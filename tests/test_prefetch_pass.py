"""Tests for the indirect-prefetch pass: DFS, legality, scheduling,
code generation, deduplication, and semantic preservation."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (Constant, INT64, IRBuilder, Load, Module, Prefetch,
                      VOID, pointer, verify_module)
from repro.machine import Interpreter, Memory
from repro.passes import (FunctionAnalyses, IndirectPrefetchPass,
                          PrefetchOptions, RejectReason)
from repro.passes.prefetch import (chain_loads, check_chain, find_chain,
                                   offset_for, schedule_chain)
from tests.conftest import build_indirect_kernel


def loads_of(func):
    return [i for i in func.instructions() if isinstance(i, Load)]


def prefetches_of(func):
    return [i for i in func.instructions() if isinstance(i, Prefetch)]


class TestDFS:
    def test_finds_chain_for_indirect_load(self, indirect_module):
        func = indirect_module.function("kernel")
        analyses = FunctionAnalyses(func)
        keys_load, bucket_load = loads_of(func)
        chain = find_chain(bucket_load, analyses)
        assert chain is not None
        assert chain.iv.phi.name == "i"
        assert chain_loads(chain) == [keys_load, bucket_load]
        opcodes = [i.opcode for i in chain.instructions]
        assert opcodes == ["gep", "load", "gep", "load"]

    def test_stride_load_has_single_load_chain(self, indirect_module):
        func = indirect_module.function("kernel")
        analyses = FunctionAnalyses(func)
        keys_load, _ = loads_of(func)
        chain = find_chain(keys_load, analyses)
        assert chain is not None
        assert chain_loads(chain) == [keys_load]

    def test_no_chain_outside_loop(self):
        m = Module("m")
        f = m.create_function("f", INT64, [("p", pointer(INT64))])
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        v = b.load(f.arg("p"))
        b.ret(v)
        assert find_chain(v, FunctionAnalyses(f)) is None

    def test_no_chain_for_loop_invariant_address(self):
        # Loop exists, but the load address never touches the IV.
        m = Module("m")
        f = m.create_function("f", VOID, [("p", pointer(INT64)),
                                          ("n", INT64)])
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        b.jmp(loop)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        v = b.load(f.arg("p"), "v")  # invariant address
        i_next = b.add(i, b.const(1))
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        assert find_chain(v, FunctionAnalyses(f)) is None

    def test_innermost_iv_chosen_in_nest(self):
        # x[a[j] + i] inside a j-loop nested in an i-loop: the chain
        # must pick j (the innermost IV), per Algorithm 1 line 21.
        m = Module("m")
        f = m.create_function(
            "f", VOID, [("a", pointer(INT64)), ("x", pointer(INT64)),
                        ("n", INT64)])
        for arg in f.args[:2]:
            arg.noalias = True
        b = IRBuilder()
        entry = f.add_block("entry")
        outer = f.add_block("outer")
        inner = f.add_block("inner")
        outer_latch = f.add_block("outer.latch")
        exit_ = f.add_block("exit")
        b.set_insert_point(entry)
        b.jmp(outer)
        b.set_insert_point(outer)
        i = b.phi(INT64, "i")
        b.jmp(inner)
        b.set_insert_point(inner)
        j = b.phi(INT64, "j")
        aj = b.load(b.gep(f.arg("a"), j, "ap"), "aj")
        mixed = b.add(aj, i, "mixed")
        xv = b.load(b.gep(f.arg("x"), mixed, "xp"), "xv")
        j_next = b.add(j, b.const(1), "j.next")
        jc = b.cmp("slt", j_next, f.arg("n"), "jc")
        b.br(jc, inner, outer_latch)
        j.add_incoming(b.const(0), outer)
        j.add_incoming(j_next, inner)
        b.set_insert_point(outer_latch)
        i_next = b.add(i, b.const(1), "i.next")
        ic = b.cmp("slt", i_next, f.arg("n"), "ic")
        b.br(ic, outer, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, outer_latch)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)

        analyses = FunctionAnalyses(f)
        chain = find_chain(xv, analyses)
        assert chain is not None
        assert chain.iv.phi is j
        assert len(chain.all_ivs) == 2  # both i and j were reachable


class TestLegality:
    def run_pass(self, module, **options):
        return IndirectPrefetchPass(PrefetchOptions(**options)).run(module)

    def reject_reasons(self, report):
        return {r.reason for r in report.rejected}

    def test_stride_only_rejected_as_not_indirect(self, indirect_module):
        report = self.run_pass(indirect_module)
        reasons = {r.load.name: r.reason for f in report.functions
                   for r in f.rejected}
        assert reasons.get("k") is RejectReason.NOT_INDIRECT

    def test_store_clobber_rejected_without_noalias(self):
        module = build_indirect_kernel(noalias=False)
        report = self.run_pass(module)
        assert report.num_prefetches == 0
        assert RejectReason.STORED_TO in self.reject_reasons(report)

    def test_no_bound_rejected(self):
        # No size annotations AND a double-exit loop: no safe clamp.
        module = build_indirect_kernel(annotate_sizes=False)
        func = module.function("kernel")
        # The loop bound fallback applies (single exit, direct index), so
        # this is still accepted -- with clamp source "loop".
        report = self.run_pass(module)
        (acc,) = report.accepted
        assert acc.clamp.source == "loop"

    def test_call_in_chain_rejected_by_default(self):
        module = self._module_with_call(pure=True)
        report = self.run_pass(module)
        assert RejectReason.CONTAINS_CALL in self.reject_reasons(report)

    def test_pure_call_allowed_with_option(self):
        module = self._module_with_call(pure=True)
        report = self.run_pass(module, allow_pure_calls=True)
        assert report.num_prefetches > 0

    def test_impure_call_rejected_even_with_option(self):
        module = self._module_with_call(pure=False)
        report = self.run_pass(module, allow_pure_calls=True)
        assert RejectReason.CONTAINS_CALL in self.reject_reasons(report)

    @staticmethod
    def _module_with_call(pure: bool) -> Module:
        m = Module("m")
        hashfn = m.create_function("h", INT64, [("x", INT64)])
        b = IRBuilder()
        b.set_insert_point(hashfn.add_block("entry"))
        if not pure:
            # A store makes the callee genuinely impure (the side-effect
            # analysis infers purity; it does not trust wishful thinking).
            scratch = b.alloc(INT64, 1, "scratch")
            b.store(hashfn.arg("x"), scratch)
        b.ret(b.mul(hashfn.arg("x"), b.const(2654435761)))

        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)), ("n", INT64)])
        f.arg("keys").array_size = f.arg("n")
        f.arg("keys").noalias = True
        f.arg("t").array_size = Constant(INT64, 4096)
        f.arg("t").noalias = True
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        h = b.call(hashfn, [k], "h")
        masked = b.and_(h, b.const(4095), "masked")
        tv = b.load(b.gep(f.arg("t"), masked), "tv")
        b.store(b.add(tv, b.const(1)), b.gep(f.arg("t"), masked))
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)
        return m

    def test_conditional_chain_rejected(self):
        # The indirect load sits in a conditionally executed block.
        m = Module("m")
        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)), ("n", INT64)])
        f.arg("keys").array_size = f.arg("n")
        f.arg("keys").noalias = True
        f.arg("t").array_size = Constant(INT64, 4096)
        f.arg("t").noalias = True
        b = IRBuilder()
        entry, loop, taken, latch, exit_ = (
            f.add_block(x) for x in
            ("entry", "loop", "taken", "latch", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        odd = b.cmp("eq", b.and_(k, b.const(1)), b.const(1), "odd")
        b.br(odd, taken, latch)
        b.set_insert_point(taken)
        tv = b.load(b.gep(f.arg("t"), k), "tv")  # conditional indirect
        b.store(b.add(tv, b.const(1)), b.gep(f.arg("t"), k))
        b.jmp(latch)
        b.set_insert_point(latch)
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, latch)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)
        report = self.run_pass(m)
        reasons = {r.load.name: r.reason for fr in report.functions
                   for r in fr.rejected}
        assert reasons.get("tv") is RejectReason.VARIANT_CONTROL

    def test_decreasing_iv_loop_bound_rejected(self):
        # Downward loop with unknown sizes: the prototype restriction
        # refuses the loop-bound fallback for decreasing IVs.
        m = Module("m")
        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)), ("n", INT64)])
        f.arg("keys").noalias = True
        f.arg("t").noalias = True
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        tv = b.load(b.gep(f.arg("t"), k), "tv")
        b.store(b.add(tv, b.const(1)), b.gep(f.arg("t"), k))
        i_next = b.sub(i, b.const(1), "i.next")
        c = b.cmp("sgt", i_next, b.const(0))
        b.br(c, loop, exit_)
        i.add_incoming(f.arg("n"), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)
        report = self.run_pass(m)
        assert RejectReason.NO_SAFE_BOUND in self.reject_reasons(report)

    def test_require_canonical_iv_option(self):
        module = build_indirect_kernel()
        report = self.run_pass(module, require_canonical_iv=True)
        assert report.num_prefetches > 0  # kernel IV is canonical


class TestScheduling:
    def test_paper_example_offsets(self):
        # t=2, c=64: stride at 64, indirect at 32 (Fig. 3).
        assert offset_for(0, 2, 64) == 64
        assert offset_for(1, 2, 64) == 32

    def test_four_load_chain(self):
        offsets = [offset_for(l, 4, 16) for l in range(4)]
        assert offsets == [16, 12, 8, 4]

    def test_minimum_offset_is_one(self):
        assert offset_for(3, 4, 2) == 1

    def test_schedule_include_stride(self):
        schedules = schedule_chain(2, 64)
        assert [(s.position, s.offset) for s in schedules] == \
            [(0, 64), (1, 32)]

    def test_schedule_indirect_only(self):
        schedules = schedule_chain(2, 64, include_stride=False)
        assert [(s.position, s.offset) for s in schedules] == [(1, 32)]

    def test_stagger_depth(self):
        schedules = schedule_chain(5, 20, max_depth=2)
        assert [s.position for s in schedules] == [0, 1, 2]

    def test_stagger_depth_zero_keeps_only_stride(self):
        schedules = schedule_chain(5, 20, max_depth=0)
        assert [s.position for s in schedules] == [0]

    @given(st.integers(1, 8), st.integers(1, 512))
    def test_offsets_monotonically_decrease(self, t, c):
        offsets = [offset_for(l, t, c) for l in range(t)]
        assert all(a >= b for a, b in zip(offsets, offsets[1:]))
        assert all(o >= 1 for o in offsets)

    @given(st.integers(2, 8), st.integers(8, 512))
    def test_spacing_is_roughly_uniform(self, t, c):
        # Consecutive offsets differ by floor-ish c/t.
        offsets = [offset_for(l, t, c) for l in range(t)]
        gaps = [a - b for a, b in zip(offsets, offsets[1:])]
        assert all(abs(g - c // t) <= 1 for g in gaps if
                   offsets[-1] > 1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            offset_for(2, 2, 64)
        with pytest.raises(ValueError):
            schedule_chain(0, 64)
        with pytest.raises(ValueError):
            schedule_chain(2, 0)


class TestCodegen:
    def test_emitted_structure_matches_fig3(self, indirect_module):
        func = indirect_module.function("kernel")
        IndirectPrefetchPass().run(indirect_module)
        verify_module(indirect_module)
        pf = prefetches_of(func)
        assert len(pf) == 2
        loop = func.block("loop")
        opcodes = [i.opcode for i in loop]
        # Stride prefetch: add, gep, prefetch (no clamp -- prefetches
        # cannot fault).  Indirect prefetch: add, cmp, select, gep,
        # load, gep, prefetch.
        assert opcodes.count("prefetch") == 2
        assert opcodes.count("select") == 1

    def test_clamp_folds_constant_bound(self):
        module = build_indirect_kernel(num_buckets=1024)
        func = module.function("kernel")
        # Rewrite keys annotation to a constant so the clamp bound is
        # statically known.
        func.arg("keys").array_size = Constant(INT64, 5000)
        IndirectPrefetchPass().run(module)
        consts = [i.operand(1).value for i in func.block("loop")
                  if i.opcode == "cmp" and isinstance(i.operand(1),
                                                      Constant)]
        assert 4999 in consts  # 5000 - 1, folded

    def test_prefetch_inserted_before_target_load(self, indirect_module):
        func = indirect_module.function("kernel")
        IndirectPrefetchPass().run(indirect_module)
        loop = func.block("loop").instructions
        target_index = next(i for i, inst in enumerate(loop)
                            if inst.name == "bv")
        prefetch_indices = [i for i, inst in enumerate(loop)
                            if inst.opcode == "prefetch"]
        assert all(i < target_index for i in prefetch_indices)

    def test_emit_stride_prefetch_option(self, indirect_module):
        func = indirect_module.function("kernel")
        IndirectPrefetchPass(
            PrefetchOptions(emit_stride_prefetch=False)).run(
            indirect_module)
        assert len(prefetches_of(func)) == 1

    def test_lookahead_constant_respected(self):
        module = build_indirect_kernel()
        func = module.function("kernel")
        IndirectPrefetchPass(PrefetchOptions(lookahead=128)).run(module)
        adds = [i for i in func.block("loop")
                if i.opcode == "add" and isinstance(i.operand(1),
                                                    Constant)]
        offsets = {i.operand(1).value for i in adds}
        assert {128, 64} <= offsets

    def test_iv_step_scaling(self):
        # IV stepping by 2: look-ahead advance must scale by the step.
        m = Module("m")
        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)), ("n", INT64)])
        f.arg("keys").array_size = f.arg("n")
        f.arg("keys").noalias = True
        f.arg("t").array_size = Constant(INT64, 4096)
        f.arg("t").noalias = True
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        tv = b.load(b.gep(f.arg("t"), k), "tv")
        b.store(b.add(tv, b.const(1)), b.gep(f.arg("t"), k))
        i_next = b.add(i, b.const(2), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)
        report = IndirectPrefetchPass(
            PrefetchOptions(lookahead=64)).run(m)
        assert report.num_prefetches == 2
        adds = [inst for inst in f.block("loop")
                if inst.opcode == "add" and inst.name.startswith("pf.iv")]
        offsets = sorted(inst.operand(1).value for inst in adds)
        assert offsets == [64, 128]  # 32*2 and 64*2


class TestEndToEndSemantics:
    def _run(self, module, n=500, buckets=1024, seed=0):
        import numpy as np
        rng = np.random.default_rng(seed)
        mem = Memory()
        keys = mem.allocate(8, n, "keys")
        keys.fill(rng.integers(0, buckets, n))
        bucket_alloc = mem.allocate(8, buckets, "buckets")
        interp = Interpreter(module, mem)
        interp.run("kernel", [keys.base, bucket_alloc.base, n])
        return list(bucket_alloc.data)

    def test_prefetch_pass_preserves_semantics(self):
        plain = build_indirect_kernel()
        transformed = build_indirect_kernel()
        report = IndirectPrefetchPass().run(transformed)
        assert report.num_prefetches == 2
        assert self._run(plain) == self._run(transformed)

    @given(st.integers(1, 64), st.integers(2, 300))
    def test_semantics_preserved_for_any_lookahead(self, c, n):
        plain = build_indirect_kernel()
        transformed = build_indirect_kernel()
        IndirectPrefetchPass(PrefetchOptions(lookahead=c)).run(transformed)
        assert self._run(plain, n=n) == self._run(transformed, n=n)

    def test_no_faults_at_loop_edges(self):
        # n == 1 and n == exactly the look-ahead distance: the clamp must
        # keep every duplicated load in bounds.
        for n in (1, 2, 31, 32, 33, 63, 64, 65):
            transformed = build_indirect_kernel()
            IndirectPrefetchPass().run(transformed)
            self._run(transformed, n=n)

    def test_report_summary_readable(self, indirect_module):
        report = IndirectPrefetchPass().run(indirect_module)
        text = report.summary()
        assert "prefetched" in text
        assert "t=2" in text

    def test_subsumed_chains_not_double_prefetched(self):
        # Two indirect loads sharing the same base load: the stride
        # prefetch must be emitted once only.
        m = Module("m")
        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)),
                             ("u", pointer(INT64)), ("n", INT64)])
        f.arg("keys").array_size = f.arg("n")
        for name in ("keys", "t", "u"):
            f.arg(name).noalias = True
        f.arg("t").array_size = Constant(INT64, 4096)
        f.arg("u").array_size = Constant(INT64, 4096)
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        tv = b.load(b.gep(f.arg("t"), k), "tv")
        uv = b.load(b.gep(f.arg("u"), k), "uv")
        b.store(b.add(tv, uv), b.gep(f.arg("t"), k))
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)
        report = IndirectPrefetchPass().run(m)
        pf = prefetches_of(f)
        # Two indirect prefetches (t and u) plus exactly one shared
        # stride prefetch for keys.
        assert len(pf) == 3
