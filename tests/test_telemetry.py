"""Telemetry subsystem: outcome classification, cycle accounting,
export, and the non-interference contract with both engines."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.bench.cache import RunCache, run_key
from repro.bench.runner import run_variant
from repro.machine import HASWELL
from repro.machine.system import MemorySystem
from repro.telemetry import (TelemetryCollector, resolve_collector,
                             telemetry_enabled)
from repro.telemetry.outcomes import OUTCOMES


def make_system(machine=HASWELL, **overrides):
    """A reference-path memory system with a collector attached."""
    config = dataclasses.replace(machine, **overrides) if overrides \
        else machine
    collector = TelemetryCollector()
    ms = MemorySystem(config, telemetry=collector)
    return ms, collector


class TestGating:
    def test_env_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TELEMETRY", raising=False)
        assert telemetry_enabled(None) is False

    def test_env_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY", "1")
        assert telemetry_enabled(None) is True

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY", "1")
        assert telemetry_enabled(False) is False
        monkeypatch.setenv("REPRO_SIM_TELEMETRY", "0")
        assert telemetry_enabled(True) is True

    def test_resolve_collector(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TELEMETRY", raising=False)
        assert resolve_collector(None) is None
        assert resolve_collector(False) is None
        assert isinstance(resolve_collector(True), TelemetryCollector)
        collector = TelemetryCollector()
        assert resolve_collector(collector) is collector
        monkeypatch.setenv("REPRO_SIM_TELEMETRY", "1")
        assert isinstance(resolve_collector(None), TelemetryCollector)

    def test_collector_disables_hot_line_memo(self):
        ms, _ = make_system()
        assert ms.fastpath is False
        assert MemorySystem(HASWELL, fastpath=True).fastpath is True

    def test_ring_capacity_env(self, monkeypatch):
        from repro.telemetry.collector import ring_capacity
        monkeypatch.setenv("REPRO_SIM_TELEMETRY_RING", "17")
        assert ring_capacity() == 17
        monkeypatch.setenv("REPRO_SIM_TELEMETRY_RING", "bogus")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert ring_capacity() == 4096


class TestClassification:
    """Drive the memory system directly and check each outcome bin."""

    def test_timely(self):
        ms, tel = make_system()
        accepted = ms.prefetch(pc=7, addr=0, time=0.0)
        assert accepted == 0.0  # the core never waits for the data
        assert tel._pending  # parked until the demand touch
        ms.load(pc=8, addr=8, time=10_000.0)  # same line, fill long done
        assert tel.outcome_counts["timely"] == 1
        assert tel.accuracy == 1.0 and tel.timeliness == 1.0
        assert tel.demand_hits_on_prefetch == 1
        assert tel.per_pc[7]["timely"] == 1
        assert tel.per_level == {"L1:timely": 1}

    def test_late_credits_partial_latency(self):
        ms, tel = make_system()
        ms.prefetch(pc=7, addr=0, time=0.0)
        ms.load(pc=8, addr=0, time=1.0)  # fill still in flight
        assert tel.outcome_counts["late"] == 1
        assert tel.timeliness == 0.0
        # The residual wait is what the demand load still paid.
        assert tel.late_wait_cycles > 0
        assert tel.per_level == {"L1:late": 1}

    def test_redundant(self):
        ms, tel = make_system()
        ms.prefetch(pc=7, addr=0, time=0.0)
        ms.prefetch(pc=7, addr=8, time=5_000.0)  # same line, resident
        assert tel.outcome_counts["redundant"] == 1
        assert tel.per_level == {"L1:redundant": 1}
        assert len(tel._pending) == 1  # the original is still parked

    def test_dropped_on_full_mshrs(self):
        ms, tel = make_system(mshrs=1)
        ms.prefetch(pc=1, addr=0, time=0.0)
        ms.prefetch(pc=2, addr=4096, time=1.0)  # MSHR still occupied
        assert tel.outcome_counts["dropped"] == 1
        assert tel.per_pc[2]["dropped"] == 1
        assert tel.cycles["prefetch_backpressure"] > 0

    def test_unused_at_finalize(self):
        ms, tel = make_system()
        ms.prefetch(pc=7, addr=0, time=0.0)
        tel.finalize(ms)
        assert tel.outcome_counts["unused"] == 1
        assert not tel._pending

    def test_early_when_evicted_before_finalize(self):
        ms, tel = make_system()
        ms.prefetch(pc=7, addr=0, time=0.0)
        ms.flush()  # line leaves the hierarchy untouched
        tel.finalize(ms)
        assert tel.outcome_counts["early"] == 1

    def test_early_on_demand_miss(self):
        tel = TelemetryCollector()
        tel.prefetch_issued(pc=7, line=3, time=0.0, fill_time=200.0)
        tel.demand_miss(line=3, t=900.0, done=1100.0)
        assert tel.outcome_counts["early"] == 1
        assert tel.cycles["DRAM"] == 200.0

    def test_stale_pending_resolved_as_early(self):
        tel = TelemetryCollector()
        tel.prefetch_issued(pc=7, line=3, time=0.0, fill_time=200.0)
        tel.prefetch_issued(pc=7, line=3, time=500.0, fill_time=700.0)
        assert tel.outcome_counts["early"] == 1
        assert len(tel._pending) == 1

    def test_translation_and_level_accounting(self):
        ms, tel = make_system()
        ms.load(pc=1, addr=0, time=0.0)  # cold: TLB walk + DRAM miss
        assert tel.cycles["TLB"] > 0
        assert tel.cycles["DRAM"] > 0
        ms.load(pc=1, addr=8, time=10_000.0)  # warm L1 hit
        assert tel.cycles.get("L1", 0) > 0

    def test_finalize_idempotent_and_core_account(self):
        class FakeCore:
            cycles = 100.0
            instructions = 80
            issue_cost = 0.25

        ms, tel = make_system()
        ms.prefetch(pc=7, addr=0, time=0.0)
        tel.finalize(ms, FakeCore())
        tel.finalize(ms, FakeCore())
        assert tel.outcome_counts["unused"] == 1  # not double-counted
        core = tel.snapshot()["cycles"]["core"]
        assert core["issue_cycles"] == 20.0
        assert core["stall_cycles"] == 80.0


class TestRingAndExport:
    def test_ring_bounded_but_counts_exact(self):
        tel = TelemetryCollector(capacity=4)
        for i in range(10):
            tel.prefetch_redundant(pc=1, line=i, time=float(i),
                                   level="L1")
        assert len(tel.events) == 4
        assert tel.events[0]["line"] == 6  # oldest evicted
        assert tel.outcome_counts["redundant"] == 10

    def test_snapshot_schema_and_json(self):
        ms, tel = make_system()
        ms.prefetch(pc=7, addr=0, time=0.0)
        ms.load(pc=8, addr=0, time=10_000.0)
        tel.finalize(ms)
        snap = json.loads(tel.to_json())
        assert snap["schema"] == "repro-telemetry-v1"
        assert set(snap["prefetch"]["outcomes"]) == set(OUTCOMES)
        assert snap["prefetch"]["issued"] == 1
        assert set(snap["memory"]) == {"memory", "caches", "tlb",
                                       "dram"}
        assert snap["events"][0]["outcome"] == "timely"


class TestSnapshotSurfaces:
    """Satellite: every stats object exports a uniform snapshot()."""

    def test_component_snapshots(self):
        ms = MemorySystem(HASWELL)
        ms.load(pc=1, addr=0, time=0.0)
        snap = ms.snapshot()
        assert snap["memory"]["demand_accesses"] == 1
        assert [c["name"] for c in snap["caches"]] == ["L1", "L2", "L3"]
        assert "hit_rate" in snap["caches"][0]["stats"]
        assert "accesses" in snap["tlb"]["stats"]
        assert snap["dram"]["stats"]["accesses"] >= 1
        json.dumps(snap)  # JSON-ready throughout


class TestRunnerIntegration:
    def make_workload(self):
        from repro.workloads import hj2
        return hj2(num_probes=800, num_buckets=1 << 11)

    def test_run_variant_attaches_snapshot(self):
        result = run_variant(self.make_workload(), "auto", HASWELL,
                             cache=False, telemetry=True)
        snap = result.telemetry
        assert snap is not None
        assert snap["prefetch"]["issued"] == \
            sum(snap["prefetch"]["outcomes"].values())
        assert snap["cycles"]["core"]["cycles"] == result.cycles
        assert result.prefetches > 0

    def test_run_variant_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TELEMETRY", raising=False)
        result = run_variant(self.make_workload(), "auto", HASWELL,
                             cache=False)
        assert result.telemetry is None

    def test_run_key_separates_telemetry(self):
        wl = self.make_workload()
        ir = "func"
        on = run_key(ir, HASWELL, wl, True, telemetry=True)
        off = run_key(ir, HASWELL, wl, True, telemetry=False)
        assert on != off
        assert off == run_key(ir, HASWELL, wl, True)

    def test_snapshot_round_trips_through_disk_cache(self, tmp_path):
        cache = RunCache(tmp_path)
        first = run_variant(self.make_workload(), "auto", HASWELL,
                            cache=cache, telemetry=True)
        again = run_variant(self.make_workload(), "auto", HASWELL,
                            cache=cache, telemetry=True)
        assert cache.hits == 1
        assert again.telemetry == first.telemetry
        assert again.cycles == first.cycles


class TestEffectivenessReport:
    def test_rows_and_rendering(self):
        from repro.telemetry.report import (effectiveness_rows,
                                            render_effectiveness,
                                            report_dict)
        from repro.workloads import hj2
        rows = effectiveness_rows(
            [hj2(num_probes=800, num_buckets=1 << 11)],
            machines=(HASWELL,), jobs=1, cache=False)
        (row,) = rows
        assert row["workload"] == "HJ-2"
        assert row["issued"] == sum(row["outcomes"].values())
        assert 0.0 <= row["accuracy"] <= 1.0
        text = render_effectiveness(rows)
        assert "HJ-2" in text and "Accuracy" in text
        json.dumps(report_dict(rows))
