"""Fast-path vs slow-path engine equivalence.

The fused-segment interpreter plus the memory-system hot-line memo
(``REPRO_SIM_FASTPATH=1``, the default) must be *bit-identical* to the
reference per-instruction engine: same cycles, same instruction
counters, same cache/TLB/DRAM statistics, same memory contents.  These
tests drive randomized IR kernels and real workloads through both
engines on all four machine configurations and compare everything.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest

from repro.ir import INT64, IRBuilder, Module, VOID, pointer,\
    verify_module
from repro.ir.values import Constant
from repro.machine import A53, A57, HASWELL, XEON_PHI, Interpreter
from repro.machine.fastexec import fastpath_enabled
from repro.machine.memory import Memory

ALL_MACHINES = (HASWELL, A57, A53, XEON_PHI)

#: Binary ops drawn by the random kernel generator (all inline-fused).
_BINOPS = ("add", "sub", "mul", "and_", "or_", "xor", "shl", "ashr",
           "lshr", "smin")
_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ugt")


def build_random_kernel(seed: int, n: int = 512) -> Module:
    """A random loop kernel mixing ALU ops, loads, stores, prefetches.

    The loop walks ``i in [0, n)`` maintaining a pool of live values;
    each iteration applies a random chain of fusable operations with
    random indirect loads of ``a``/``b`` (indices masked into range),
    stores the final value to ``out[i]``, and occasionally prefetches a
    random future address.
    """
    rng = random.Random(seed)
    module = Module(f"random{seed}")
    func = module.create_function(
        "kernel", VOID,
        [("a", pointer(INT64)), ("b", pointer(INT64)),
         ("out", pointer(INT64)), ("n", INT64)])
    a, bptr, out, nval = func.args
    for arg in (a, bptr, out):
        arg.array_size = Constant(INT64, n)
        arg.noalias = True

    b = IRBuilder()
    entry = func.add_block("entry")
    loop = func.add_block("loop")
    exit_ = func.add_block("exit")
    b.set_insert_point(entry)
    b.br(b.cmp("sgt", nval, b.const(0), "guard"), loop, exit_)
    b.set_insert_point(loop)
    i = b.phi(INT64, "i")

    mask = b.const(n - 1)
    pool = [i, b.const(rng.randrange(1, 100))]

    def pick():
        return rng.choice(pool)

    acc = b.load(b.gep(a, b.and_(pick(), mask, "ix"), "ap"), "av")
    pool.append(acc)
    for step in range(rng.randrange(6, 14)):
        kind = rng.random()
        if kind < 0.5:
            op = rng.choice(_BINOPS)
            rhs = b.const(rng.randrange(1, 8)) if op in ("shl", "ashr",
                                                         "lshr") \
                else pick()
            acc = getattr(b, op)(pick(), rhs, f"v{step}")
        elif kind < 0.65:
            cond = b.cmp(rng.choice(_PREDICATES), pick(), pick(),
                         f"c{step}")
            acc = b.select(cond, pick(), pick(), f"s{step}")
        elif kind < 0.85:
            src = rng.choice((a, bptr))
            idx = b.and_(pick(), mask, f"m{step}")
            acc = b.load(b.gep(src, idx, f"p{step}"), f"l{step}")
        else:
            idx = b.and_(b.add(pick(), b.const(rng.randrange(1, 64)),
                               f"f{step}"), mask, f"fm{step}")
            b.prefetch(b.gep(bptr, idx, f"fp{step}"))
            continue
        pool.append(acc)
    b.store(acc, b.gep(out, i, "op"))
    i_next = b.add(i, b.const(1), "i.next")
    b.br(b.cmp("slt", i_next, nval, "cond"), loop, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, loop)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return module


def run_engine(module: Module, machine, fastpath: bool, seed: int,
               n: int = 512):
    """Run a random kernel under one engine; returns (snapshot, out)."""
    mem = Memory(machine.line_size)
    data = np.random.default_rng(seed).integers(0, 1 << 40, 2 * n)
    a = mem.allocate(8, n, "a")
    a.fill(data[:n])
    barr = mem.allocate(8, n, "b")
    barr_vals = data[n:]
    barr.fill(barr_vals)
    out = mem.allocate(8, n, "out")
    interp = Interpreter(module, mem, machine=machine,
                         fastpath=fastpath)
    interp.run("kernel", [a.base, barr.base, out.base, n])
    return snapshot(interp), list(out.data)


def snapshot(interp: Interpreter) -> dict:
    """Every observable counter of a finished run."""
    return {
        "cycles": interp.core.cycles,
        "core_instructions": interp.core.instructions,
        "run_stats": dataclasses.asdict(interp.stats),
        "memory_system": interp.memory_system.snapshot(),
    }


class TestRandomKernelEquivalence:
    @pytest.mark.parametrize("machine", ALL_MACHINES,
                             ids=lambda m: m.name)
    @pytest.mark.parametrize("seed", range(6))
    def test_identical_on_random_kernels(self, machine, seed):
        module_slow = build_random_kernel(seed)
        module_fast = build_random_kernel(seed)
        slow, out_slow = run_engine(module_slow, machine, False, seed)
        fast, out_fast = run_engine(module_fast, machine, True, seed)
        assert fast == slow
        assert out_fast == out_slow


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("machine", ALL_MACHINES,
                             ids=lambda m: m.name)
    @pytest.mark.parametrize("variant", ("plain", "auto"))
    def test_integer_sort(self, machine, variant):
        from repro.workloads import IntegerSort
        snaps = []
        for fastpath in (False, True):
            wl = IntegerSort(num_keys=2500, num_buckets=1 << 14)
            module = wl.build_variant(variant)
            mem = Memory(machine.line_size)
            prepared = wl.prepare(mem)
            interp = Interpreter(module, mem, machine=machine,
                                 fastpath=fastpath)
            interp.run(wl.entry, prepared.args)
            prepared.validate()
            snaps.append(snapshot(interp))
        assert snaps[0] == snaps[1]

    @pytest.mark.parametrize("machine", (HASWELL, A53),
                             ids=lambda m: m.name)
    def test_hash_join_manual(self, machine):
        from repro.workloads import hj2
        snaps = []
        for fastpath in (False, True):
            wl = hj2(num_probes=2000, num_buckets=1 << 12)
            module = wl.build_variant("manual")
            mem = Memory(machine.line_size)
            prepared = wl.prepare(mem)
            interp = Interpreter(module, mem, machine=machine,
                                 fastpath=fastpath)
            interp.run(wl.entry, prepared.args)
            prepared.validate()
            snaps.append(snapshot(interp))
        assert snaps[0] == snaps[1]


#: Execution tiers of the engine: reference, fused fast path, the
#: trace JIT on top of the fast path (``REPRO_SIM_TRACEJIT=1``), and
#: the vectorized batch tier on top of the trace JIT
#: (``REPRO_SIM_VECTOR=1``).  Each entry is (fastpath, tracejit,
#: vector).
TIERS = ((False, False, False), (True, False, False),
         (True, True, False), (True, True, True))


class TestTelemetryEquivalence:
    """Telemetry is observational: attaching a collector must leave
    every timing and architectural counter bit-identical, under every
    execution tier (reference, fused fast path, trace JIT, vectorized
    batches)."""

    @pytest.mark.parametrize("machine", (HASWELL, A53),
                             ids=lambda m: m.name)
    @pytest.mark.parametrize("variant", ("plain", "auto"))
    def test_tier_telemetry_matrix(self, machine, variant):
        from repro.workloads import IntegerSort
        snaps = {}
        for fastpath, tracejit, vector in TIERS:
            for telemetry in (False, True):
                wl = IntegerSort(num_keys=2000, num_buckets=1 << 14)
                module = wl.build_variant(variant)
                mem = Memory(machine.line_size)
                prepared = wl.prepare(mem)
                interp = Interpreter(module, mem, machine=machine,
                                     fastpath=fastpath,
                                     tracejit=tracejit,
                                     vector=vector,
                                     telemetry=telemetry)
                result = interp.run(wl.entry, prepared.args)
                prepared.validate()
                if telemetry:
                    assert result.telemetry is not None
                else:
                    assert result.telemetry is None
                snaps[(fastpath, tracejit, vector, telemetry)] = \
                    snapshot(interp)
        base = snaps[(False, False, False, False)]
        for combo, snap in snaps.items():
            assert snap == base, f"diverged at {combo}"

    @pytest.mark.parametrize("machine", (HASWELL, XEON_PHI),
                             ids=lambda m: m.name)
    def test_manual_deep_chain_matrix(self, machine):
        from repro.workloads import hj8
        snaps = {}
        for fastpath, tracejit, vector in TIERS:
            for telemetry in (False, True):
                wl = hj8(num_probes=1200, num_buckets=1 << 11)
                module = wl.build_variant("manual")
                mem = Memory(machine.line_size)
                prepared = wl.prepare(mem)
                interp = Interpreter(module, mem, machine=machine,
                                     fastpath=fastpath,
                                     tracejit=tracejit,
                                     vector=vector,
                                     telemetry=telemetry)
                interp.run(wl.entry, prepared.args)
                prepared.validate()
                snaps[(fastpath, tracejit, vector, telemetry)] = \
                    snapshot(interp)
        base = snaps[(False, False, False, False)]
        for combo, snap in snaps.items():
            assert snap == base, f"diverged at {combo}"


class TestFastpathFlag:
    def test_env_flag_forces_slow_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        assert fastpath_enabled(None) is False
        interp = Interpreter(build_random_kernel(0), Memory(),
                             machine=HASWELL)
        assert interp.fastpath is False
        assert interp.memory_system.fastpath is False

    def test_env_flag_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_FASTPATH", raising=False)
        assert fastpath_enabled(None) is True

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        assert fastpath_enabled(True) is True
        interp = Interpreter(build_random_kernel(1), Memory(),
                             machine=HASWELL, fastpath=True)
        assert interp.fastpath is True
