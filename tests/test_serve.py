"""Tests for the serve subsystem (src/repro/serve/).

Covers the protocol layer (validation, canonicalisation, content
keys), the HTTP layer, and the server's behaviour under fault — the
PR's acceptance checklist: worker timeout → 504 with the slot
reclaimed, malformed JSON → 400, saturation → 429 + Retry-After, and a
coalesced request surviving one client's disconnect.

Server tests run a real :class:`repro.serve.server.Server` on a
loopback port inside ``asyncio.run`` with one or two worker processes;
the debug ``sleep`` job kind provides controllable job durations.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json

import pytest

from repro.serve.client import AsyncClient
from repro.serve.pool import JobTimeout, WorkerPool
from repro.serve.protocol import (RequestError, execute_request,
                                  normalize_request, request_key)
from repro.serve.server import Server, ServeConfig


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _alive(pid: int) -> bool:
    import os
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True
    # The pid exists but may be a zombie awaiting reap by init.
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split(")")[-1].split()[0] != "Z"
    except OSError:
        return False


# ---------------------------------------------------------------------------
# Protocol layer.


class TestNormalizeRequest:
    def test_defaults_filled(self):
        norm = normalize_request({"workload": "is"})
        assert norm["kind"] == "simulate"
        assert norm["variant"] == "auto"
        assert norm["machine"] == "Haswell"
        assert norm["lookahead"] == 64
        assert norm["small"] is False
        assert norm["validate"] is True
        assert norm["tier"] == "auto"
        assert norm["include"] == []
        assert norm["options"] == {"stride": True, "hoist": False}

    def test_workload_spelling_canonicalised(self):
        a = normalize_request({"workload": "HJ-2"})
        b = normalize_request({"workload": "hj2"})
        assert a == b
        assert request_key(a) == request_key(b)

    def test_include_sorted_and_key_sensitive(self):
        a = normalize_request({"workload": "is",
                               "include": ["remarks", "telemetry"]})
        b = normalize_request({"workload": "is",
                               "include": ["telemetry", "remarks"]})
        plain = normalize_request({"workload": "is"})
        assert a == b
        assert request_key(a) == request_key(b)
        # include participates in the key: a telemetry-free stored
        # result must never satisfy a telemetry-requesting client.
        assert request_key(a) != request_key(plain)

    def test_include_comma_string_form(self):
        norm = normalize_request({"workload": "is",
                                  "include": "telemetry,spans"})
        assert norm["include"] == ["spans", "telemetry"]

    @pytest.mark.parametrize("raw", [
        "not a dict",
        {"schema": "repro-serve-request-v9", "workload": "is"},
        {"kind": "simulate"},                      # missing workload
        {"workload": "nope"},
        {"workload": "is", "machine": "Cray"},
        {"workload": "is", "variant": "best"},
        {"workload": "is", "lookahead": 0},
        {"workload": "is", "lookahead": "64"},
        {"workload": "is", "small": 1},
        {"workload": "is", "include": ["cycles"]},
        {"workload": "is", "options": {"unroll": True}},
        {"workload": "is", "tier": "gpu"},
        {"kind": "compile"},                       # missing source
        {"kind": "compile", "source": "   "},
        {"kind": "sleep", "seconds": 1},           # debug only
    ])
    def test_rejects(self, raw):
        with pytest.raises(RequestError):
            normalize_request(raw)

    def test_sleep_needs_debug(self):
        norm = normalize_request({"kind": "sleep", "seconds": 0.01},
                                 debug=True)
        assert norm["seconds"] == 0.01
        with pytest.raises(RequestError):
            normalize_request({"kind": "sleep", "seconds": 999},
                              debug=True)


class TestExecuteRequest:
    def test_simulate_matches_direct_run_variant(self):
        from repro.bench.runner import run_variant
        from repro.machine import HASWELL
        from repro.passes import PrefetchOptions
        from repro.workloads import workload_by_name

        norm = normalize_request({"workload": "is", "small": True,
                                  "variant": "auto"})
        payload = execute_request(norm)
        assert payload["status"] == "ok"
        direct = run_variant(workload_by_name("is", small=True),
                             "auto", HASWELL,
                             options=PrefetchOptions(lookahead=64),
                             cache=False)
        assert canonical(payload["result"]) == \
            canonical(dataclasses.asdict(direct))

    def test_simulate_with_includes(self):
        norm = normalize_request(
            {"workload": "is", "small": True,
             "include": ["telemetry", "remarks", "timeline", "spans"]})
        payload = execute_request(norm)
        assert payload["result"]["telemetry"] is not None
        assert payload["result"]["timeline"] is not None
        assert any(r["name"] == "PrefetchInserted"
                   for r in payload["remarks"])
        assert payload["spans"]["schema"] == "repro-spans-v1"
        assert any(s["name"] == "simulate"
                   for s in payload["spans"]["records"])

    def test_compile_kind(self):
        source = """
void kernel(long* restrict dst, long* restrict idx,
            long* restrict src, long n) {
    for (long i = 0; i < n; i++)
        dst[idx[i]] += src[i];
}
"""
        norm = normalize_request({"kind": "compile", "source": source})
        payload = execute_request(norm)
        assert payload["status"] == "ok"
        assert "prefetch" in payload["result"]["ir"]

    def test_compile_error_is_client_fault(self):
        norm = normalize_request({"kind": "compile",
                                  "source": "void kernel( {{{"})
        payload = execute_request(norm)
        assert payload["status"] == "error"
        assert payload["code"] == 400


# ---------------------------------------------------------------------------
# Server behaviour.  Each scenario runs a fresh server inside one
# asyncio.run so loop, server, and clients share a lifetime.


def serve_scenario(scenario, **config_kwargs):
    """Run ``await scenario(server)`` against a started test server."""
    config_kwargs.setdefault("workers", 1)
    config_kwargs.setdefault("queue_limit", 8)
    config_kwargs.setdefault("timeout_s", 60.0)
    config_kwargs.setdefault("debug", True)

    async def body(tmp):
        server = Server(ServeConfig(port=0, cache_dir=tmp,
                                    **config_kwargs))
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.close()

    def run(tmp_path):
        return asyncio.run(body(str(tmp_path)))
    return run


async def roundtrip(server, request, method="POST", path="/v1/jobs"):
    client = AsyncClient("127.0.0.1", server.port)
    try:
        return await client.request(method, path, request)
    finally:
        await client.close()


class TestServerBasics:
    def test_health_metrics_and_404(self, tmp_path):
        async def scenario(server):
            status, body = await roundtrip(server, None, "GET",
                                           "/healthz")
            assert (status, body["status"]) == (200, "ok")
            status, body = await roundtrip(server, None, "GET",
                                           "/metrics")
            assert status == 200
            assert body["schema"] == "repro-serve-metrics-v1"
            status, body = await roundtrip(server, None, "GET",
                                           "/nowhere")
            assert status == 404
            status, body = await roundtrip(server, None, "GET",
                                           "/v1/jobs")
            assert status == 405
        serve_scenario(scenario)(tmp_path)

    def test_malformed_json_is_400(self, tmp_path):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            payload = b"{not json"
            writer.write(
                b"POST /v1/jobs HTTP/1.1\r\n"
                b"Content-Length: " + str(len(payload)).encode() +
                b"\r\n\r\n" + payload)
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()
        serve_scenario(scenario)(tmp_path)

    def test_truncated_body_is_400(self, tmp_path):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"POST /v1/jobs HTTP/1.1\r\n"
                         b"Content-Length: 100\r\n\r\n{\"a\":")
            writer.write_eof()
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()
        serve_scenario(scenario)(tmp_path)

    def test_schema_violation_is_400(self, tmp_path):
        async def scenario(server):
            status, body = await roundtrip(
                server, {"workload": "not-a-workload"})
            assert status == 400
            assert "unknown workload" in body["error"]
        serve_scenario(scenario)(tmp_path)

    def test_simulate_then_cas_hit(self, tmp_path):
        async def scenario(server):
            request = {"workload": "is", "small": True,
                       "variant": "plain"}
            status, first = await roundtrip(server, request)
            assert status == 200
            assert first["cached"] is False
            assert first["result"]["cycles"] > 0
            status, second = await roundtrip(server, request)
            assert status == 200
            assert second["cached"] is True
            assert canonical(second["result"]) == \
                canonical(first["result"])
            assert server.metrics.cas_hits == 1
            # The stored payload is readable back by key.
            status, stored = await roundtrip(
                server, None, "GET", f"/v1/store/{first['key']}")
            assert status == 200
            assert canonical(stored["result"]) == \
                canonical(first["result"])
        serve_scenario(scenario)(tmp_path)

    def test_store_rejects_non_content_keys(self, tmp_path):
        """GET /v1/store/<key> takes the key verbatim from the URL —
        anything but a full sha256 hexdigest (traversal attempts
        included) must 404 without touching the filesystem."""
        # A .json file just outside the store root that a traversal
        # key used to be able to address.
        sentinel = tmp_path.parent / "serve-escape-sentinel.json"
        sentinel.write_text(json.dumps({"leak": True}))

        async def scenario(server):
            for key in ("aa/../../../serve-escape-sentinel",
                        "../../../../etc/passwd",
                        "..%2f..%2fetc%2fpasswd",
                        "abc", "A" * 64, "f" * 63, "f" * 65):
                status, body = await roundtrip(
                    server, None, "GET", f"/v1/store/{key}")
                assert status == 404, key
                assert "leak" not in canonical(body)
            # A well-formed but absent key is still a plain 404.
            status, body = await roundtrip(
                server, None, "GET", f"/v1/store/{'0' * 64}")
            assert status == 404
        try:
            serve_scenario(scenario)(tmp_path)
        finally:
            sentinel.unlink()


class TestServerFaults:
    def test_coalesced_identical_requests_share_one_job(self, tmp_path):
        async def scenario(server):
            request = {"kind": "sleep", "seconds": 0.4}
            results = await asyncio.gather(
                *(roundtrip(server, request) for _ in range(4)))
            assert [status for status, _ in results] == [200] * 4
            assert server.metrics.jobs_executed == 1
            assert server.metrics.coalesce_hits == 3
        serve_scenario(scenario)(tmp_path)

    def test_worker_timeout_504_and_slot_reclaimed(self, tmp_path):
        async def scenario(server):
            status, body = await roundtrip(
                server, {"kind": "sleep", "seconds": 30})
            assert status == 504
            assert server.metrics.timeouts == 1
            assert server.pool.restarts == 1
            # The slot is usable again: a quick job succeeds.
            status, body = await roundtrip(
                server, {"kind": "sleep", "seconds": 0.01})
            assert status == 200
            assert server.metrics.jobs_executed == 1
        serve_scenario(scenario, timeout_s=1.0)(tmp_path)

    def test_saturation_sheds_with_429(self, tmp_path):
        async def scenario(server):
            blocker = asyncio.create_task(roundtrip(
                server, {"kind": "sleep", "seconds": 1.0}))
            await asyncio.sleep(0.2)  # let it occupy the queue
            status, body = await roundtrip(
                server, {"kind": "sleep", "seconds": 0.9})
            assert status == 429
            assert body["error"].startswith("server saturated")
            assert server.metrics.shed == 1
            status, _ = await blocker
            assert status == 200
        serve_scenario(scenario, queue_limit=1)(tmp_path)

    def test_disconnected_client_does_not_cancel_coalesced_job(
            self, tmp_path):
        async def scenario(server):
            request = {"kind": "sleep", "seconds": 0.6}
            # Client A submits then vanishes mid-flight.
            first = AsyncClient("127.0.0.1", server.port)
            payload = json.dumps(request).encode()
            await first.connect()
            first._writer.write(
                b"POST /v1/jobs HTTP/1.1\r\n"
                b"Content-Length: " + str(len(payload)).encode() +
                b"\r\n\r\n" + payload)
            await first._writer.drain()
            await asyncio.sleep(0.2)  # job admitted and running
            await first.close()       # A is gone
            # Client B coalesces onto the same job and still wins.
            status, body = await roundtrip(server, request)
            assert status == 200
            assert body["coalesced"] is True
            assert server.metrics.jobs_executed == 1
        serve_scenario(scenario)(tmp_path)

    def test_compile_error_served_as_400(self, tmp_path):
        async def scenario(server):
            status, body = await roundtrip(
                server, {"kind": "compile", "source": "void ((("})
            assert status == 400
            assert body["status"] == "error"
        serve_scenario(scenario)(tmp_path)

    def test_store_failure_never_wedges_the_key(self, tmp_path):
        """A store.put that raises (full disk, unserialisable payload
        field) must not leak the inflight entry: the waiters still get
        their answer and the key stays usable — a leaked entry would
        make every identical request hang on a dead future and burn a
        queue_limit slot forever."""
        async def scenario(server):
            def broken_put(key, data):
                raise TypeError("payload not JSON-serialisable")
            server.store.put = broken_put
            request = {"workload": "is", "small": True,
                       "variant": "plain"}
            status, body = await roundtrip(server, request)
            assert status == 200        # the simulation itself worked
            assert server._inflight == {}
            # The key is not poisoned: a retry re-runs (no CAS entry
            # was ever written) and answers again.
            status, body = await roundtrip(server, request)
            assert status == 200
            assert body["cached"] is False
            assert server.metrics.jobs_executed == 2
        serve_scenario(scenario)(tmp_path)

    def test_slow_store_does_not_block_event_loop(self, tmp_path):
        """CAS disk I/O runs off-loop: /healthz answers while another
        request's store probe is stuck in a slow read."""
        import time

        async def scenario(server):
            orig_get = server.store.get

            def slow_get(key):
                time.sleep(1.5)
                return orig_get(key)
            server.store.get = slow_get
            probing = asyncio.ensure_future(roundtrip(
                server, {"workload": "is", "small": True,
                         "variant": "plain"}))
            await asyncio.sleep(0.2)  # probe now sleeping in a thread
            t0 = time.monotonic()
            status, _ = await roundtrip(server, None, "GET", "/healthz")
            assert status == 200
            assert time.monotonic() - t0 < 1.0
            status, _ = await probing
            assert status == 200
        serve_scenario(scenario)(tmp_path)


class TestWorkerPoolUnit:
    def test_sigterm_takes_workers_down(self, tmp_path):
        """Terminating `repro serve` must not orphan the pool: forked
        workers inherit each other's pipe ends, so they only exit via
        the graceful SIGTERM path (or their parent-death watchdog)."""
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parent.parent / "src")
            + os.pathsep + env.get("PYTHONPATH", ""))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--cache-dir", str(tmp_path)],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            assert "listening on" in proc.stdout.readline()

            def worker_pids():
                out = subprocess.run(
                    ["ps", "-o", "pid=", "--ppid", str(proc.pid)],
                    capture_output=True, text=True)
                return [int(p) for p in out.stdout.split()]

            pids = worker_pids()
            assert len(pids) == 2
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=10) is not None
            deadline = time.time() + 10
            while time.time() < deadline:
                if all(not _alive(pid) for pid in pids):
                    break
                time.sleep(0.1)
            survivors = [pid for pid in pids if _alive(pid)]
            for pid in survivors:  # never leak across tests
                os.kill(pid, signal.SIGKILL)
            assert survivors == []
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_timeout_kills_and_pool_survives(self, tmp_path):
        pool = WorkerPool(1)
        try:
            async def body():
                with pytest.raises(JobTimeout):
                    await pool.run({"schema": "repro-serve-request-v1",
                                    "kind": "sleep", "seconds": 30,
                                    "include": []}, timeout=0.5)
                out = await pool.run(
                    {"schema": "repro-serve-request-v1",
                     "kind": "sleep", "seconds": 0.0, "include": []},
                    timeout=30)
                assert out["status"] == "ok"
            asyncio.run(body())
            assert pool.restarts == 1
        finally:
            pool.close()

    def test_close_does_not_respawn_midjob_worker(self):
        """close() while a job is in flight must not restart the
        worker: the pipe death *is* shutdown, and a respawn would leak
        a fresh child process past close()."""
        from repro.serve.pool import WorkerCrash

        pool = WorkerPool(1)
        pids = [w.process.pid for w in pool._workers]

        async def body():
            job = asyncio.ensure_future(pool.run(
                {"schema": "repro-serve-request-v1", "kind": "sleep",
                 "seconds": 30, "include": []}))
            await asyncio.sleep(0.3)  # worker is mid-job
            pool.close()
            with pytest.raises(WorkerCrash):
                await job
        asyncio.run(body())
        # Same (now dead) children — nothing was respawned.
        assert [w.process.pid for w in pool._workers] == pids
        assert all(not _alive(pid) for pid in pids)

    def test_deadline_counts_queue_wait(self):
        """The deadline clock starts at admission: a job whose budget
        burns down queued behind other work times out there, rather
        than getting a full fresh deadline once a thread frees up."""
        import time

        pool = WorkerPool(1)
        try:
            async def body():
                slow = asyncio.ensure_future(pool.run(
                    {"schema": "repro-serve-request-v1",
                     "kind": "sleep", "seconds": 1.0, "include": []},
                    timeout=30))
                await asyncio.sleep(0.1)  # slow job holds the slot
                with pytest.raises(JobTimeout) as err:
                    await pool.run(
                        {"schema": "repro-serve-request-v1",
                         "kind": "sleep", "seconds": 30,
                         "include": []}, timeout=0.5)
                assert "queued" in str(err.value)
                out = await slow
                assert out["status"] == "ok"
            t0 = time.monotonic()
            asyncio.run(body())
            # The queued job answered as soon as the slot freed
            # (~1s), not after serving a fresh 0.5s deadline on a 30s
            # sleep — and the worker was never touched, so no restart.
            assert time.monotonic() - t0 < 10
            assert pool.restarts == 0
        finally:
            pool.close()
