"""Every ``RejectReason`` in passes/prefetch/legality.py, with minimal
IR per reason, asserting both the rejection and the emitted
``PrefetchRejected`` remark (satellite of the remarks subsystem)."""

from __future__ import annotations

import pytest

from repro.ir import (Constant, INT64, IRBuilder, Module, VOID, pointer,
                      verify_module)
from repro.passes import (IndirectPrefetchPass, PrefetchOptions,
                          RejectReason)
from repro.remarks import RemarkEmitter, collecting
from tests.conftest import build_indirect_kernel


def run_with_remarks(module, **options):
    """Run the prefetch pass collecting remarks; (report, emitter)."""
    emitter = RemarkEmitter()
    with collecting(emitter):
        report = IndirectPrefetchPass(PrefetchOptions(**options)).run(
            module)
    return report, emitter


def rejection_remark(emitter, reason: RejectReason):
    """The first PrefetchRejected remark carrying ``reason``."""
    for remark in emitter.by_name("PrefetchRejected"):
        if remark.arg("reason") == reason.name:
            return remark
    raise AssertionError(
        f"no PrefetchRejected remark with reason={reason.name}; got "
        f"{[r.args for r in emitter.by_name('PrefetchRejected')]}")


def assert_rejected(report, emitter, reason: RejectReason,
                    load_name: str | None = None):
    """The report rejected with ``reason`` AND a matching remark exists."""
    assert reason in {r.reason for r in report.rejected}
    remark = rejection_remark(emitter, reason)
    assert remark.kind == "missed"
    assert remark.pass_name == "indirect-prefetch"
    if load_name is not None:
        assert remark.arg("load") == f"%{load_name}"
    return remark


def new_kernel(module_args):
    """A fresh module + kernel skeleton with the standard arguments."""
    m = Module("m")
    f = m.create_function("kernel", VOID, module_args)
    return m, f


class TestNoInductionVariable:
    def test_loop_invariant_address(self):
        # The DFS finds no IV at all: the load address never touches one.
        m = Module("m")
        f = m.create_function("kernel", VOID,
                              [("p", pointer(INT64)), ("n", INT64)])
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        b.jmp(loop)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        b.load(f.arg("p"), "v")  # invariant address
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)

        report, emitter = run_with_remarks(m)
        remark = assert_rejected(
            report, emitter, RejectReason.NO_INDUCTION_VARIABLE, "v")
        assert remark.arg("path") == []  # no chain was ever found


class TestNotIndirect:
    def test_pure_stride_load(self, indirect_module):
        report, emitter = run_with_remarks(indirect_module)
        remark = assert_rejected(
            report, emitter, RejectReason.NOT_INDIRECT, "k")
        # The single-load chain WAS walked; its DFS path is reported.
        assert "%k" in remark.arg("path")
        assert remark.arg("detail") == ""


class TestContainsCall:
    @staticmethod
    def _module_with_call() -> Module:
        m = Module("m")
        hashfn = m.create_function("h", INT64, [("x", INT64)])
        b = IRBuilder()
        b.set_insert_point(hashfn.add_block("entry"))
        b.ret(b.mul(hashfn.arg("x"), b.const(2654435761)))

        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)), ("n", INT64)])
        f.arg("keys").array_size = f.arg("n")
        f.arg("keys").noalias = True
        f.arg("t").array_size = Constant(INT64, 4096)
        f.arg("t").noalias = True
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        h = b.call(hashfn, [k], "h")
        masked = b.and_(h, b.const(4095), "masked")
        b.load(b.gep(f.arg("t"), masked), "tv")
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)
        return m

    def test_call_in_chain(self):
        report, emitter = run_with_remarks(self._module_with_call())
        remark = assert_rejected(
            report, emitter, RejectReason.CONTAINS_CALL, "tv")
        assert "call to @h" in remark.arg("detail")
        assert "%h" in remark.arg("path")


class TestNonInductionPhi:
    def test_merged_index_phi(self):
        # The index reaching the target load is a phi merging an in-loop
        # diamond: complex control flow the pass cannot reproduce.
        m = Module("m")
        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)), ("n", INT64)])
        f.arg("keys").array_size = f.arg("n")
        f.arg("keys").noalias = True
        f.arg("t").array_size = Constant(INT64, 4096)
        f.arg("t").noalias = True
        b = IRBuilder()
        entry, loop, then, merge, exit_ = (
            f.add_block(x) for x in
            ("entry", "loop", "then", "merge", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        odd = b.cmp("eq", b.and_(k, b.const(1)), b.const(1), "odd")
        b.br(odd, then, merge)
        b.set_insert_point(then)
        k2 = b.add(k, b.const(1), "k2")
        b.jmp(merge)
        b.set_insert_point(merge)
        j = b.phi(INT64, "j")
        j.add_incoming(k2, then)
        j.add_incoming(k, loop)
        b.load(b.gep(f.arg("t"), j), "tv")
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, merge)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)

        report, emitter = run_with_remarks(m)
        remark = assert_rejected(
            report, emitter, RejectReason.NON_INDUCTION_PHI, "tv")
        assert "phi %j" in remark.arg("detail")
        assert "%j" in remark.arg("path")


class TestStoredTo:
    def test_store_may_clobber_lookahead_array(self):
        module = build_indirect_kernel(noalias=False)
        report, emitter = run_with_remarks(module)
        remark = assert_rejected(
            report, emitter, RejectReason.STORED_TO, "bv")
        assert "clobber" in remark.arg("detail")


class TestVariantControl:
    def test_conditional_indirect_load(self):
        # The indirect load sits in a conditionally executed block.
        m = Module("m")
        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)), ("n", INT64)])
        f.arg("keys").array_size = f.arg("n")
        f.arg("keys").noalias = True
        f.arg("t").array_size = Constant(INT64, 4096)
        f.arg("t").noalias = True
        b = IRBuilder()
        entry, loop, taken, latch, exit_ = (
            f.add_block(x) for x in
            ("entry", "loop", "taken", "latch", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        odd = b.cmp("eq", b.and_(k, b.const(1)), b.const(1), "odd")
        b.br(odd, taken, latch)
        b.set_insert_point(taken)
        b.load(b.gep(f.arg("t"), k), "tv")  # conditional indirect
        b.jmp(latch)
        b.set_insert_point(latch)
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, latch)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)

        report, emitter = run_with_remarks(m)
        remark = assert_rejected(
            report, emitter, RejectReason.VARIANT_CONTROL, "tv")
        assert "conditional block taken" in remark.arg("detail")


class TestNoSafeBound:
    def test_decreasing_iv_unknown_sizes(self):
        # Downward loop with unknown sizes: the prototype restriction
        # refuses the loop-bound fallback for decreasing IVs.
        m = Module("m")
        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)), ("n", INT64)])
        f.arg("keys").noalias = True
        f.arg("t").noalias = True
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        b.load(b.gep(f.arg("t"), k), "tv")
        i_next = b.sub(i, b.const(1), "i.next")
        c = b.cmp("sgt", i_next, b.const(0))
        b.br(c, loop, exit_)
        i.add_incoming(f.arg("n"), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)

        report, emitter = run_with_remarks(m)
        remark = assert_rejected(
            report, emitter, RejectReason.NO_SAFE_BOUND, "tv")
        assert remark.arg("path")  # the chain itself was legal to walk

    def test_non_canonical_iv_with_option(self, indirect_module):
        # require_canonical_iv rejects chains on non-canonical IVs; the
        # conftest kernel's IV is canonical, so retune its step to +2.
        func = indirect_module.function("kernel")
        (update,) = [i for i in func.instructions()
                     if i.name == "i.next"]
        update.set_operand(1, Constant(INT64, 2))
        report, emitter = run_with_remarks(indirect_module,
                                           require_canonical_iv=True)
        remark = assert_rejected(
            report, emitter, RejectReason.NO_SAFE_BOUND, "bv")
        assert "canonical" in remark.arg("detail")


class TestLoopVariantInput:
    def test_chain_reads_excluded_loop_variant_value(self):
        # idx = k + r where r is loaded (in-loop) from an invariant
        # address: the DFS excludes r's sub-path (it reaches no IV), so
        # the chain consumes a loop-variant value from outside itself.
        m = Module("m")
        f = m.create_function(
            "kernel", VOID, [("keys", pointer(INT64)),
                             ("t", pointer(INT64)),
                             ("q", pointer(INT64)), ("n", INT64)])
        f.arg("keys").array_size = f.arg("n")
        for name in ("keys", "t", "q"):
            f.arg(name).noalias = True
        f.arg("t").array_size = Constant(INT64, 4096)
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        g = b.cmp("sgt", f.arg("n"), b.const(0))
        b.br(g, loop, exit_)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        k = b.load(b.gep(f.arg("keys"), i), "k")
        r = b.load(f.arg("q"), "r")
        idx = b.add(k, r, "idx")
        b.load(b.gep(f.arg("t"), idx), "tv")
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"))
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        verify_module(m)

        report, emitter = run_with_remarks(m)
        remark = assert_rejected(
            report, emitter, RejectReason.LOOP_VARIANT_INPUT, "tv")
        assert "loop-variant %r" in remark.arg("detail")
        assert "%r" not in remark.arg("path")  # excluded from the chain


class TestEveryReasonCovered:
    def test_enum_is_exhausted_by_this_suite(self):
        # Guard: a new RejectReason must come with a test + remark here.
        covered = {
            RejectReason.NO_INDUCTION_VARIABLE,
            RejectReason.NOT_INDIRECT,
            RejectReason.CONTAINS_CALL,
            RejectReason.NON_INDUCTION_PHI,
            RejectReason.STORED_TO,
            RejectReason.VARIANT_CONTROL,
            RejectReason.NO_SAFE_BOUND,
            RejectReason.LOOP_VARIANT_INPUT,
        }
        assert covered == set(RejectReason)
