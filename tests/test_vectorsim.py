"""Vectorized batch tier (``repro.machine.vectorsim``) tests.

Three groups:

* **equivalence** — kernels and workloads that *do* vectorize must be
  bit-identical to the reference engine on every counter, and actually
  run batches (``vector_compiles``/``vbatches`` > 0), including the
  singleton-batch edge (a loop that exits on the first post-compile
  iteration);
* **plan-time rejection** — loop shapes the planner must refuse
  (pointer chasing, memory-dependent addresses and exits, unsupported
  ops), each leaving a ``VectorDeopt`` remark with ``stage="plan"`` and
  the trace running — still bit-identically — on the trace-JIT tier;
* **run-time deopt guards** — batches that hit an alias / range /
  fault guard must abandon the batch *before any state mutation*,
  clear ``trace.vector``, emit ``stage="run"``, and fall back to the
  compiled trace with identical architectural results.

The gating tests pin the ``REPRO_SIM_VECTOR`` contract: off by
default, and enabling the vector tier implies the trace-JIT machinery.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.ir import INT64, IRBuilder, Module, VOID, pointer, \
    verify_module
from repro.ir.values import Constant
from repro.machine import A53, HASWELL, Interpreter
from repro.machine.memory import Memory, MemoryFault
from repro.machine.vectorsim import MAX_BATCH, vector_enabled
from repro.remarks import RemarkEmitter, collecting


def snapshot(interp: Interpreter) -> dict:
    """Every observable counter of a finished run."""
    return {
        "cycles": interp.core.cycles,
        "core_instructions": interp.core.instructions,
        "run_stats": dataclasses.asdict(interp.stats),
        "memory_system": interp.memory_system.snapshot(),
    }


def _loop_skeleton(module_name: str, n: int):
    """Common ``for i in [0, n)`` scaffold over (a, b, out) int64
    arrays; returns (module, builder, loop block pieces)."""
    module = Module(module_name)
    func = module.create_function(
        "kernel", VOID,
        [("a", pointer(INT64)), ("b", pointer(INT64)),
         ("out", pointer(INT64)), ("n", INT64)])
    a, bptr, out, nval = func.args
    for arg in (a, bptr, out):
        arg.array_size = Constant(INT64, n)
        arg.noalias = True
    b = IRBuilder()
    entry = func.add_block("entry")
    loop = func.add_block("loop")
    exit_ = func.add_block("exit")
    b.set_insert_point(entry)
    b.br(b.cmp("sgt", nval, b.const(0), "guard"), loop, exit_)
    b.set_insert_point(loop)
    i = b.phi(INT64, "i")
    return module, func, b, entry, loop, exit_, i, a, bptr, out, nval


def _finish_loop(module, b, entry, loop, exit_, i, nval):
    i_next = b.add(i, b.const(1), "i.next")
    b.br(b.cmp("slt", i_next, nval, "cond"), loop, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, loop)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return module


def build_gather_kernel(n: int) -> Module:
    """``out[i] = a[b[i] & mask] + i`` plus a prefetch — the paper's
    indirect stream; fully vectorizable."""
    module, func, b, entry, loop, exit_, i, a, bptr, out, nval = \
        _loop_skeleton("gather", n)
    mask = b.const(n - 1)
    idx = b.load(b.gep(bptr, i, "bp"), "idx")
    val = b.load(b.gep(a, b.and_(idx, mask, "ix"), "ap"), "av")
    fi = b.and_(b.add(i, b.const(16), "fi"), mask, "fm")
    b.prefetch(b.gep(bptr, fi, "fp"))
    b.store(b.add(val, i, "sum"), b.gep(out, i, "op"))
    return _finish_loop(module, b, entry, loop, exit_, i, nval)


def build_histogram_kernel(n: int) -> Module:
    """``out[b[i] & mask] += 1`` — a read-modify-write stream whose
    intra-batch forwarding must replay in program order."""
    module, func, b, entry, loop, exit_, i, a, bptr, out, nval = \
        _loop_skeleton("hist", n)
    mask = b.const(n - 1)
    idx = b.load(b.gep(bptr, i, "bp"), "idx")
    slot = b.gep(out, b.and_(idx, mask, "ix"), "sp")
    cur = b.load(slot, "cur")
    b.store(b.add(cur, b.const(1), "inc"), slot)
    return _finish_loop(module, b, entry, loop, exit_, i, nval)


def build_reduction_kernel(n: int) -> Module:
    """``acc += a[i]`` with the total stored once after the loop.

    The entry jumps straight into the loop (the tests always pass
    ``n >= 1``) so the loop body dominates the exit-block store."""
    module = Module("reduce")
    func = module.create_function(
        "kernel", VOID,
        [("a", pointer(INT64)), ("b", pointer(INT64)),
         ("out", pointer(INT64)), ("n", INT64)])
    a, bptr, out, nval = func.args
    for arg in (a, bptr, out):
        arg.array_size = Constant(INT64, n)
        arg.noalias = True
    b = IRBuilder()
    entry = func.add_block("entry")
    loop = func.add_block("loop")
    exit_ = func.add_block("exit")
    b.set_insert_point(entry)
    b.jmp(loop)
    b.set_insert_point(loop)
    i = b.phi(INT64, "i")
    acc = b.phi(INT64, "acc")
    val = b.load(b.gep(a, i, "ap"), "av")
    acc_next = b.add(acc, val, "acc.next")
    i_next = b.add(i, b.const(1), "i.next")
    b.br(b.cmp("slt", i_next, nval, "cond"), loop, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, loop)
    acc.add_incoming(b.const(0), entry)
    acc.add_incoming(acc_next, loop)
    b.set_insert_point(exit_)
    b.store(acc_next, b.gep(out, b.const(0), "op"))
    b.ret()
    verify_module(module)
    return module


def build_pointer_chase_kernel(n: int) -> Module:
    """``p = a[p & mask]`` — the next address depends on the previous
    load: the planner must reject with reason ``recurrence``."""
    module, func, b, entry, loop, exit_, i, a, bptr, out, nval = \
        _loop_skeleton("chase", n)
    mask = b.const(n - 1)
    p = b.phi(INT64, "p")
    val = b.load(b.gep(a, b.and_(p, mask, "ix"), "ap"), "pv")
    b.store(val, b.gep(out, i, "op"))
    i_next = b.add(i, b.const(1), "i.next")
    b.br(b.cmp("slt", i_next, nval, "cond"), loop, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, loop)
    p.add_incoming(b.const(0), entry)
    p.add_incoming(val, loop)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return module


def build_value_dependent_store_kernel(n: int) -> Module:
    """An RMW load whose value addresses a second store — a
    loop-carried memory dependence (reason
    ``value-dependent-address``)."""
    module, func, b, entry, loop, exit_, i, a, bptr, out, nval = \
        _loop_skeleton("vdep", n)
    mask = b.const(n - 1)
    slot = b.gep(a, i, "sp")
    cur = b.load(slot, "cur")
    b.store(b.add(cur, b.const(1), "inc"), slot)
    b.store(i, b.gep(out, b.and_(cur, mask, "ox"), "op"))
    return _finish_loop(module, b, entry, loop, exit_, i, nval)


def build_memory_exit_kernel(n: int) -> Module:
    """Exit condition depends on a loaded value (reason
    ``exit-depends-on-memory``): ``while i + 1 < b[i]`` where every
    ``b[i]`` holds ``n`` — same trip count as the plain loop, but the
    bound comes out of memory each iteration."""
    module, func, b, entry, loop, exit_, i, a, bptr, out, nval = \
        _loop_skeleton("memexit", n)
    lim = b.load(b.gep(bptr, i, "bp"), "lim")
    b.store(lim, b.gep(out, i, "op"))
    i_next = b.add(i, b.const(1), "i.next")
    b.br(b.cmp("slt", i_next, lim, "cond"), loop, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, loop)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return module


def build_sdiv_kernel(n: int) -> Module:
    """``out[i] = a[i] / 3`` — sdiv is not vectorized (reason
    ``unsupported-op``); the trace tier must still run it."""
    module, func, b, entry, loop, exit_, i, a, bptr, out, nval = \
        _loop_skeleton("sdiv", n)
    val = b.load(b.gep(a, i, "ap"), "av")
    b.store(b.sdiv(val, b.const(3), "q"), b.gep(out, i, "op"))
    return _finish_loop(module, b, entry, loop, exit_, i, nval)


def build_alias_kernel(n: int) -> Module:
    """A pure gather from ``out`` while storing to ``out`` — distinct
    address streams into the same allocation, caught by the run-time
    alias guard."""
    module, func, b, entry, loop, exit_, i, a, bptr, out, nval = \
        _loop_skeleton("alias", n)
    mask = b.const(n - 1)
    idx = b.load(b.gep(bptr, i, "bp"), "idx")
    val = b.load(b.gep(out, b.and_(idx, mask, "ix"), "gp"), "gv")
    b.store(b.add(val, i, "sum"), b.gep(a, i, "op"))
    b.store(i, b.gep(out, i, "wp"))
    return _finish_loop(module, b, entry, loop, exit_, i, nval)


def build_short_rows_kernel(n: int, row: int = 10) -> Module:
    """A nested loop gathering ``row`` elements per outer iteration.

    The inner single-block loop vectorizes, but every entry runs only
    ``row`` iterations — far below ``MIN_AVG_ITERS`` — so the adaptive
    short-batch guard must retire the plan (``VectorDeopt``, reason
    ``short-batches``) after ``PROBE_BATCHES`` batches and leave the
    scalar trace running, still bit-identically."""
    module = Module("shortrows")
    func = module.create_function(
        "kernel", VOID,
        [("a", pointer(INT64)), ("b", pointer(INT64)),
         ("out", pointer(INT64)), ("n", INT64)])
    a, bptr, out, nval = func.args
    for arg in (a, bptr, out):
        arg.array_size = Constant(INT64, n)
        arg.noalias = True
    rows = n // row
    b = IRBuilder()
    entry = func.add_block("entry")
    outer = func.add_block("outer")
    inner = func.add_block("inner")
    latch = func.add_block("latch")
    exit_ = func.add_block("exit")
    b.set_insert_point(entry)
    b.jmp(outer)
    b.set_insert_point(outer)
    r = b.phi(INT64, "row")
    base = b.mul(r, b.const(row), "base")
    b.jmp(inner)
    b.set_insert_point(inner)
    j = b.phi(INT64, "j")
    idx = b.add(base, j, "idx")
    bv = b.load(b.gep(bptr, idx, "bp"), "bv")
    av = b.load(b.gep(a, b.and_(bv, b.const(n - 1), "ix"), "ap"),
                "av")
    b.store(b.add(av, idx, "sum"), b.gep(out, idx, "op"))
    j_next = b.add(j, b.const(1), "j.next")
    b.br(b.cmp("slt", j_next, b.const(row), "jc"), inner, latch)
    j.add_incoming(b.const(0), outer)
    j.add_incoming(j_next, inner)
    b.set_insert_point(latch)
    r_next = b.add(r, b.const(1), "row.next")
    b.br(b.cmp("slt", r_next, b.const(rows), "rc"), outer, exit_)
    r.add_incoming(b.const(0), entry)
    r.add_incoming(r_next, latch)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return module


def _run(module: Module, data_b, n: int, machine=HASWELL, *,
         fastpath=True, tracejit=False, vector=False,
         telemetry=False):
    """Run a built kernel; returns (interp, result, out contents)."""
    mem = Memory(machine.line_size)
    a = mem.allocate(8, n, "a")
    a.fill([(7 * k + 3) % n for k in range(n)])
    barr = mem.allocate(8, n, "b")
    barr.fill(list(data_b))
    out = mem.allocate(8, n, "out")
    interp = Interpreter(module, mem, machine=machine,
                         fastpath=fastpath, tracejit=tracejit,
                         vector=vector, telemetry=telemetry)
    result = interp.run("kernel", [a.base, barr.base, out.base, n])
    return interp, result, list(out.data)


def _b_stream(n: int):
    return [(13 * k + 5) % n for k in range(n)]


def _compare_tiers(build, n: int, machine=HASWELL, data_b=None):
    """Reference vs trace-JIT vs vector run of one kernel; returns the
    vector-tier interpreter (for counter assertions)."""
    data_b = _b_stream(n) if data_b is None else data_b
    ref, _res, out_ref = _run(build(n), data_b, n, machine,
                              fastpath=False)
    jit, _res, out_jit = _run(build(n), data_b, n, machine,
                              tracejit=True)
    vec, _res, out_vec = _run(build(n), data_b, n, machine,
                              vector=True)
    assert snapshot(vec) == snapshot(ref), "vector != reference"
    assert snapshot(jit) == snapshot(ref), "tracejit != reference"
    assert out_vec == out_ref
    assert out_jit == out_ref
    return vec


class TestGating:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_VECTOR", raising=False)
        assert vector_enabled(None) is False
        interp = Interpreter(build_gather_kernel(64), Memory(),
                             machine=HASWELL)
        assert interp.vector is False

    def test_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_VECTOR", "1")
        assert vector_enabled(None) is True
        interp = Interpreter(build_gather_kernel(64), Memory(),
                             machine=HASWELL)
        assert interp.vector is True
        assert interp.tracejit is True, "vector implies trace JIT"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_VECTOR", "1")
        assert vector_enabled(False) is False
        interp = Interpreter(build_gather_kernel(64), Memory(),
                             machine=HASWELL, vector=False)
        assert interp.vector is False

    def test_vector_without_fastpath_is_off(self):
        interp = Interpreter(build_gather_kernel(64), Memory(),
                             machine=HASWELL, fastpath=False,
                             vector=True)
        assert interp.vector is False


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("machine", (HASWELL, A53),
                             ids=lambda m: m.name)
    @pytest.mark.parametrize("build", (build_gather_kernel,
                                       build_histogram_kernel,
                                       build_reduction_kernel),
                             ids=lambda b: b.__name__)
    def test_bit_identical_and_batched(self, build, machine):
        vec = _compare_tiers(build, 256, machine)
        tj = vec._tj
        assert tj.vector_compiles == 1
        assert tj.vector_deopts == 0
        assert sum(t.vbatches for t in tj.traces) >= 1

    def test_singleton_batch(self):
        # One post-compile iteration: with threshold 16 the trace
        # compiles on the 17th header visit, so n = 18 leaves exactly
        # one iteration for the vector tier — a batch trimmed to a
        # single lane with the exit taken (_B == 1, _exit == 1).
        vec = _compare_tiers(build_gather_kernel, 18,
                             data_b=_b_stream(18))
        tj = vec._tj
        assert tj.vector_compiles == 1
        trace = next(t for t in tj.traces if t.vector or t.vbatches)
        assert trace.vbatches == 1
        assert trace.viters == 1

    def test_long_run_multiple_batches(self):
        # A loop longer than MAX_BATCH iterations must split into
        # multiple batches and still exit exactly.
        n = MAX_BATCH + 100
        assert n > MAX_BATCH
        data_b = [(13 * k + 5) % n for k in range(n)]
        ref, _r, out_ref = _run(build_gather_kernel(n), data_b, n,
                                fastpath=False)
        vec, _r, out_vec = _run(build_gather_kernel(n), data_b, n,
                                vector=True)
        assert snapshot(vec) == snapshot(ref)
        assert out_vec == out_ref
        trace = max(vec._tj.traces, key=lambda t: t.vbatches)
        assert trace.vbatches >= 2

    def test_trace_report_carries_vector_counters(self):
        data_b = _b_stream(256)
        vec, _r, _out = _run(build_gather_kernel(256), data_b, 256,
                             vector=True)
        rows = vec.trace_report()
        assert rows
        row = max(rows, key=lambda r: r["vector_iterations"])
        assert row["vector_batches"] >= 1
        assert row["vector_iterations"] >= 1

    def test_telemetry_attributes_vector_prefetches(self):
        data_b = _b_stream(256)
        ref, res_ref, _o = _run(build_gather_kernel(256), data_b, 256,
                                fastpath=False, telemetry=True)
        vec, res_vec, _o = _run(build_gather_kernel(256), data_b, 256,
                                vector=True, telemetry=True)
        tel_ref, tel_vec = res_ref.telemetry, res_vec.telemetry
        # Aggregates identical; only the attribution section differs.
        assert {k: v for k, v in tel_vec.items() if k != "vector"} \
            == {k: v for k, v in tel_ref.items() if k != "vector"}
        assert tel_ref["vector"]["per_pc"] == {}
        per_pc = tel_vec["vector"]["per_pc"]
        assert per_pc, "vector tier should attribute the prefetch PC"
        for bins in per_pc.values():
            assert bins["batches"] >= 1
            assert bins["prefetches"] >= 1


class TestPlanRejects:
    def _plan_reject(self, build, n, reason, data_b=None):
        """The kernel must run bit-identically while the planner
        rejects with ``reason`` (stage="plan")."""
        data_b = _b_stream(n) if data_b is None else data_b
        emitter = RemarkEmitter()
        ref, _r, out_ref = _run(build(n), data_b, n, fastpath=False)
        with collecting(emitter):
            vec, _r, out_vec = _run(build(n), data_b, n, vector=True)
        assert snapshot(vec) == snapshot(ref)
        assert out_vec == out_ref
        assert vec._tj.vector_compiles == 0
        deopts = [r for r in emitter if r.name == "VectorDeopt"]
        assert deopts, "expected a plan-stage VectorDeopt remark"
        assert all(dict(r.args)["stage"] == "plan" for r in deopts)
        assert any(dict(r.args)["reason"] == reason for r in deopts), (
            f"wanted {reason!r}, got "
            f"{[dict(r.args)['reason'] for r in deopts]}")

    def test_pointer_chase_rejected(self):
        self._plan_reject(build_pointer_chase_kernel, 256,
                          "recurrence")

    def test_value_dependent_address_rejected(self):
        self._plan_reject(build_value_dependent_store_kernel, 256,
                          "value-dependent-address")

    def test_memory_dependent_exit_rejected(self):
        self._plan_reject(build_memory_exit_kernel, 256,
                          "exit-depends-on-memory",
                          data_b=[256] * 256)

    def test_unsupported_op_rejected(self):
        self._plan_reject(build_sdiv_kernel, 256, "unsupported-op")


class TestRuntimeDeopts:
    def test_alias_guard_falls_back(self):
        n = 256
        data_b = _b_stream(n)
        emitter = RemarkEmitter()
        ref, _r, out_ref = _run(build_alias_kernel(n), data_b, n,
                                fastpath=False)
        with collecting(emitter):
            vec, _r, out_vec = _run(build_alias_kernel(n), data_b, n,
                                    vector=True)
        assert snapshot(vec) == snapshot(ref)
        assert out_vec == out_ref
        tj = vec._tj
        assert tj.vector_compiles == 1, "plan should accept"
        assert tj.vector_deopts == 1, "first batch must deopt"
        assert all(t.vector is None for t in tj.traces), (
            "deopt must clear the driver")
        runs = [r for r in emitter if r.name == "VectorDeopt"]
        assert len(runs) == 1
        assert dict(runs[0].args)["stage"] == "run"
        assert dict(runs[0].args)["reason"] == "alias"

    def test_batch_never_mutates_before_deopt(self):
        # After the alias deopt the trace tier re-runs the same
        # iterations; any pre-commit mutation by the abandoned batch
        # would double-apply and diverge the output.  (Covered by the
        # equality above, asserted separately for clarity.)
        n = 64
        data_b = _b_stream(n)
        _ref, _r, out_ref = _run(build_alias_kernel(n), data_b, n,
                                 fastpath=False)
        _vec, _r, out_vec = _run(build_alias_kernel(n), data_b, n,
                                 vector=True)
        assert out_vec == out_ref

    def test_alloc_range_guard(self):
        # A gathered index that walks off the end of ``a`` mid-batch:
        # the bounds guard must deopt (no state touched), the trace
        # tier re-runs the batch, and the reference fault is
        # reproduced exactly.
        n = 256
        module_v = build_gather_kernel(n)
        module_r = build_gather_kernel(n)
        # Patch the mask off: rebuild with raw (unmasked) indices.

        def build_unmasked(n):
            (module, func, b, entry, loop, exit_, i, a, bptr, out,
             nval) = _loop_skeleton("oob", n)
            idx = b.load(b.gep(bptr, i, "bp"), "idx")
            val = b.load(b.gep(a, idx, "ap"), "av")
            b.store(val, b.gep(out, i, "op"))
            return _finish_loop(module, b, entry, loop, exit_, i, nval)

        data_b = [k % n for k in range(n)]
        data_b[40] = n + 3  # lands in the guard line: unmapped
        with pytest.raises(MemoryFault):
            _run(build_unmasked(n), data_b, n, fastpath=False)
        emitter = RemarkEmitter()
        with collecting(emitter):
            with pytest.raises(MemoryFault):
                _run(build_unmasked(n), data_b, n, vector=True)
        reasons = [dict(r.args)["reason"] for r in emitter
                   if r.name == "VectorDeopt"]
        assert any(reason in ("alloc-range", "memory-fault")
                   for reason in reasons), reasons

    def test_short_batches_retire_the_plan(self):
        # An inner loop over 10-element rows: every batch holds at
        # most 10 iterations, so after PROBE_BATCHES batches the
        # average sits far below MIN_AVG_ITERS and the driver must
        # retire itself — post-commit, so the run stays bit-identical.
        from repro.machine.vectorsim import PROBE_BATCHES
        n = 256
        data_b = _b_stream(n)
        emitter = RemarkEmitter()
        ref, _r, out_ref = _run(build_short_rows_kernel(n), data_b, n,
                                fastpath=False)
        with collecting(emitter):
            vec, _r, out_vec = _run(build_short_rows_kernel(n),
                                    data_b, n, vector=True)
        assert snapshot(vec) == snapshot(ref)
        assert out_vec == out_ref
        tj = vec._tj
        assert tj.vector_compiles == 1, "inner loop should plan"
        runs = [r for r in emitter if r.name == "VectorDeopt"
                and dict(r.args)["stage"] == "run"]
        assert len(runs) == 1
        assert dict(runs[0].args)["reason"] == "short-batches"
        trace = max(tj.traces, key=lambda t: t.vbatches)
        assert trace.vector is None, "retirement must clear the plan"
        assert trace.vbatches == PROBE_BATCHES, (
            "the guard fires on the probe batch, counters keep the "
            "committed work")
