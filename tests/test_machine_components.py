"""Unit tests for memory, caches, TLB, DRAM, and the HW prefetcher."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import (Cache, DRAMChannel, Memory, MemoryFault,
                           StridePrefetcher, TLB)


class TestMemory:
    def test_allocation_line_aligned(self):
        mem = Memory()
        a = mem.allocate(8, 10, "a")
        b = mem.allocate(8, 10, "b")
        assert a.base % 64 == 0 and b.base % 64 == 0
        assert b.base >= a.end  # no overlap

    def test_guard_gap_between_allocations(self):
        mem = Memory()
        a = mem.allocate(1, 64, "a")
        b = mem.allocate(1, 1, "b")
        assert b.base - a.end >= 0
        assert (b.base // 64) > ((a.end - 1) // 64)  # distinct lines

    def test_load_store_roundtrip(self):
        mem = Memory()
        a = mem.allocate(8, 4, "a")
        mem.store(a.base + 16, 42)
        assert mem.load(a.base + 16) == 42
        assert a.data[2] == 42

    def test_unmapped_access_faults(self):
        mem = Memory()
        mem.allocate(8, 4, "a")
        with pytest.raises(MemoryFault):
            mem.load(0x10)
        with pytest.raises(MemoryFault):
            mem.load(mem.allocations[0].end + 4096)

    def test_out_of_bounds_past_end_faults(self):
        mem = Memory()
        a = mem.allocate(8, 4, "a")
        with pytest.raises(MemoryFault):
            mem.load(a.base + 4 * 8)  # one past the end

    def test_misaligned_access_faults(self):
        mem = Memory()
        a = mem.allocate(8, 4, "a")
        with pytest.raises(MemoryFault):
            mem.load(a.base + 3)

    def test_fill_and_as_numpy(self):
        import numpy as np
        mem = Memory()
        a = mem.allocate(8, 4, "a")
        a.fill(np.array([1, 2, 3, 4]))
        assert list(a.as_numpy()) == [1, 2, 3, 4]
        with pytest.raises(ValueError):
            a.fill([1, 2])

    def test_float_allocation(self):
        mem = Memory()
        a = mem.allocate(8, 2, "a", is_float=True)
        mem.store(a.base, 2.5)
        assert mem.load(a.base) == 2.5


class TestCache:
    def make(self, size=1024, ways=2, latency=4):
        return Cache("L1", size, ways, 64, latency)

    def test_miss_then_hit(self):
        c = self.make()
        assert c.lookup(7) is None
        c.insert(7, fill_time=100.0)
        assert c.lookup(7) == 100.0

    def test_lru_eviction(self):
        c = self.make(size=128, ways=2)  # 2 lines, 1 set
        c.insert(0, 0.0)
        c.insert(1, 0.0)
        c.lookup(0)          # touch 0: now 1 is LRU
        c.insert(2, 0.0)     # evicts 1
        assert c.lookup(1) is None
        assert c.lookup(0) is not None
        assert c.stats.evictions == 1

    def test_set_indexing_no_cross_set_eviction(self):
        c = self.make(size=256, ways=1)  # 4 lines, 4 sets
        c.insert(0, 0.0)
        c.insert(1, 0.0)  # different set
        assert c.lookup(0) is not None

    def test_dirty_eviction_reported(self):
        c = self.make(size=128, ways=1)  # 2 sets
        c.insert(0, 0.0)
        c.mark_dirty(0)
        assert c.insert(2, 0.0) is True  # same set, evicts dirty 0
        assert c.stats.dirty_evictions == 1

    def test_clean_eviction_not_reported(self):
        c = self.make(size=128, ways=1)
        c.insert(0, 0.0)
        assert c.insert(2, 0.0) is False

    def test_reinsert_preserves_dirty(self):
        c = self.make(size=128, ways=1)
        c.insert(0, 0.0)
        c.mark_dirty(0)
        c.insert(0, 5.0)  # refill same line
        assert c.insert(2, 0.0) is True  # dirtiness survived

    def test_invalidate_all(self):
        c = self.make()
        c.insert(3, 0.0)
        c.invalidate_all()
        assert c.lookup(3) is None

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", 100, 3, 64, 1)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_capacity_invariant(self, lines):
        c = self.make(size=512, ways=2)  # 8 lines
        for line in lines:
            c.insert(line, 0.0)
        resident = sum(1 for line in range(64) if c.contains(line))
        assert resident <= 8


class TestTLB:
    def test_hit_is_free(self):
        tlb = TLB(entries=4, walk_latency=50)
        t1 = tlb.translate(0x1000, 0.0)
        assert t1 == 50.0  # first touch walks
        assert tlb.translate(0x1008, 100.0) == 100.0  # same page

    def test_page_size_respected(self):
        tlb = TLB(entries=4, page_bits=21, walk_latency=50)
        tlb.translate(0, 0.0)
        assert tlb.translate((1 << 21) - 8, 10.0) == 10.0  # same 2MiB page
        assert tlb.translate(1 << 21, 10.0) > 10.0  # next page walks

    def test_l1_eviction_falls_to_l2(self):
        tlb = TLB(entries=2, walk_latency=50, l2_entries=64,
                  l2_latency=9)
        for page in range(4):
            tlb.translate(page << 12, 0.0)
        # Page 0 left the small L1 TLB but sits in the L2 TLB.
        t = tlb.translate(0, 1000.0)
        assert t == 1009.0
        assert tlb.stats.l2_hits == 1

    def test_walker_serialisation(self):
        tlb = TLB(entries=64, walk_latency=100, max_walks=1)
        t1 = tlb.translate(0 << 12, 0.0)
        t2 = tlb.translate(1 << 12, 0.0)
        assert t1 == 100.0
        assert t2 == 200.0  # waited for the single walker

    def test_two_walkers_overlap(self):
        tlb = TLB(entries=64, walk_latency=100, max_walks=2)
        assert tlb.translate(0 << 12, 0.0) == 100.0
        assert tlb.translate(1 << 12, 0.0) == 100.0
        assert tlb.translate(2 << 12, 0.0) == 200.0

    def test_flush(self):
        tlb = TLB(entries=4, walk_latency=10)
        tlb.translate(0, 0.0)
        tlb.flush()
        assert tlb.translate(0, 0.0) == 10.0

    def test_huge_pages_reduce_misses(self):
        import random
        rng = random.Random(0)
        addrs = [rng.randrange(0, 1 << 24) & ~7 for _ in range(500)]
        small = TLB(entries=16, page_bits=12, walk_latency=30)
        huge = TLB(entries=16, page_bits=21, walk_latency=30)
        for a in addrs:
            small.translate(a, 0.0)
            huge.translate(a, 0.0)
        assert huge.stats.misses < small.stats.misses


class TestDRAM:
    def test_latency(self):
        d = DRAMChannel(latency=200, cycles_per_line=8)
        assert d.access(0.0) == 200.0

    def test_bandwidth_queueing(self):
        d = DRAMChannel(latency=200, cycles_per_line=8)
        d.access(0.0)
        assert d.access(0.0) == 208.0  # queued behind the first
        assert d.stats.queue_cycles == 8.0

    def test_idle_channel_no_queue(self):
        d = DRAMChannel(latency=200, cycles_per_line=8)
        d.access(0.0)
        assert d.access(1000.0) == 1200.0

    def test_contention_penalty(self):
        d = DRAMChannel(latency=200, cycles_per_line=8,
                        contention_penalty=30)
        d.set_sharers(4)
        assert d.access(0.0) == 200.0 + 3 * 30

    def test_writeback_occupies_channel(self):
        d = DRAMChannel(latency=200, cycles_per_line=8)
        d.writeback(0.0)
        assert d.access(0.0) == 208.0
        assert d.stats.writebacks == 1

    def test_reset(self):
        d = DRAMChannel(latency=200, cycles_per_line=8)
        d.access(0.0)
        d.reset()
        assert d.access(0.0) == 200.0
        assert d.stats.accesses == 1


class TestStridePrefetcher:
    def test_trains_after_threshold(self):
        p = StridePrefetcher(distance=4, degree=2, train_threshold=2)
        assert p.observe(1, 100) == []
        assert p.observe(1, 101) == []   # stride 1, confidence 1
        fills = p.observe(1, 102)        # confidence 2 -> fire
        assert fills == [106, 107]

    def test_stride_change_resets_confidence(self):
        p = StridePrefetcher(train_threshold=2)
        p.observe(1, 100)
        p.observe(1, 101)
        p.observe(1, 102)
        assert p.observe(1, 110) == []   # new stride: confidence resets
        # The second consistent stride-8 access reaches the threshold.
        assert p.observe(1, 118) != []

    def test_distinct_pcs_tracked_separately(self):
        p = StridePrefetcher(train_threshold=2)
        p.observe(1, 100)
        p.observe(2, 500)
        p.observe(1, 101)
        p.observe(2, 501)
        assert p.observe(1, 102) != []
        assert p.observe(2, 502) != []

    def test_same_line_accesses_ignored(self):
        p = StridePrefetcher(train_threshold=2)
        p.observe(1, 100)
        assert p.observe(1, 100) == []
        assert p.observe(1, 100) == []

    def test_table_capacity_lru(self):
        p = StridePrefetcher(table_size=2, train_threshold=2)
        p.observe(1, 100)
        p.observe(2, 200)
        p.observe(3, 300)  # evicts pc 1
        p.observe(1, 101)  # retrains from scratch
        assert p.observe(1, 102) == []  # only confidence 1 again

    def test_negative_stride(self):
        p = StridePrefetcher(distance=2, degree=1, train_threshold=2)
        p.observe(1, 100)
        p.observe(1, 99)
        fills = p.observe(1, 98)
        assert fills == [96]
