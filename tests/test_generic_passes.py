"""Tests for DCE, constant folding, mem2reg, the pass manager, and the
ICC-like stride-indirect baseline."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (Constant, INT64, IRBuilder, Load, Module, Prefetch,
                      VOID, parse_module, pointer, print_module,
                      verify_module)
from repro.machine import Interpreter, Memory
from repro.passes import (ConstantFoldingPass, DeadCodeEliminationPass,
                          Mem2RegPass, PassManager,
                          StrideIndirectBaselinePass)
from tests.conftest import build_indirect_kernel


class TestDCE:
    def test_removes_unused_arithmetic(self):
        m = parse_module("""
        func @f(%x: i64) -> i64 {
        entry:
          %dead = add i64 %x, 1
          %dead2 = mul i64 %dead, 2
          ret i64 %x
        }
        """)
        removed = DeadCodeEliminationPass().run(m)
        assert removed == 2
        assert len(m.function("f").entry.instructions) == 1

    def test_keeps_stores_and_prefetches(self):
        m = parse_module("""
        func @f(%p: i64*) -> void {
        entry:
          store i64 1, %p
          prefetch i64* %p
          ret
        }
        """)
        assert DeadCodeEliminationPass().run(m) == 0

    def test_keeps_allocs(self):
        m = parse_module("""
        func @f() -> void {
        entry:
          %buf = alloc i64, 8
          ret
        }
        """)
        assert DeadCodeEliminationPass().run(m) == 0

    def test_removes_dead_load(self):
        m = parse_module("""
        func @f(%p: i64*) -> void {
        entry:
          %v = load i64* %p
          ret
        }
        """)
        assert DeadCodeEliminationPass().run(m) == 1


class TestConstantFolding:
    def _fold(self, body: str) -> Module:
        m = parse_module(f"""
        func @f(%x: i64) -> i64 {{
        entry:
        {body}
        }}
        """)
        ConstantFoldingPass().run(m)
        DeadCodeEliminationPass().run(m)
        verify_module(m)
        return m

    def test_folds_arithmetic(self):
        m = self._fold("""
          %a = add i64 2, 3
          %b = mul i64 %a, 4
          ret i64 %b
        """)
        ret = m.function("f").entry.terminator
        assert isinstance(ret.value, Constant) and ret.value.value == 20

    def test_folds_comparison_and_select(self):
        m = self._fold("""
          %c = cmp slt i64 3, 5
          %s = select i64 %c, 10, 20
          ret i64 %s
        """)
        ret = m.function("f").entry.terminator
        assert ret.value.value == 10

    def test_identity_add_zero(self):
        m = self._fold("""
          %a = add i64 %x, 0
          ret i64 %a
        """)
        ret = m.function("f").entry.terminator
        assert ret.value.name == "x"

    def test_identity_mul_one_and_zero(self):
        m = self._fold("""
          %a = mul i64 %x, 1
          %b = mul i64 %x, 0
          %c = add i64 %a, %b
          ret i64 %c
        """)
        ret = m.function("f").entry.terminator
        # x*1 + x*0 == x + 0 == x
        assert ret.value.name == "x"

    def test_division_by_zero_not_crashing(self):
        m = self._fold("""
          %a = sdiv i64 5, 0
          ret i64 %a
        """)
        ret = m.function("f").entry.terminator
        assert isinstance(ret.value, Constant)

    @given(st.integers(-2**31, 2**31), st.integers(-2**31, 2**31))
    def test_fold_matches_interpreter(self, a, b):
        # Folded result must equal what the interpreter computes.
        text = f"""
        func @f() -> i64 {{
        entry:
          %r = add i64 {a}, {b}
          %r2 = mul i64 %r, 3
          %r3 = xor i64 %r2, {b}
          ret i64 %r3
        }}
        """
        interpreted = Interpreter(parse_module(text)).run("f", []).value
        folded_module = parse_module(text)
        ConstantFoldingPass().run(folded_module)
        ret = folded_module.function("f").entry.terminator
        assert isinstance(ret.value, Constant)
        assert ret.value.value == interpreted


class TestMem2Reg:
    def test_promotes_simple_counter(self):
        from repro.frontend import compile_source
        # compile_source runs mem2reg; check no allocs remain.
        m = compile_source("""
        long sum(long n) {
            long acc = 0;
            for (long i = 0; i < n; i++) acc += i;
            return acc;
        }
        """)
        f = m.function("sum")
        assert not any(i.opcode == "alloc" for i in f.instructions())
        assert any(i.opcode == "phi" for i in f.instructions())
        assert Interpreter(m).run("sum", [10]).value == 45

    def test_unpromoted_when_address_escapes(self):
        m = parse_module("""
        func @g(%p: i64*) -> void {
        entry:
          store i64 1, %p
          ret
        }

        func @f() -> i64 {
        entry:
          %slot = alloc i64, 1
          call @g(i64* %slot)
          %v = load i64* %slot
          ret i64 %v
        }
        """)
        promoted = Mem2RegPass().run(m)
        assert promoted == 0  # escaped via the call

    def test_multi_element_alloc_not_promoted(self):
        m = parse_module("""
        func @f() -> i64 {
        entry:
          %buf = alloc i64, 2
          store i64 5, %buf
          %v = load i64* %buf
          ret i64 %v
        }
        """)
        assert Mem2RegPass().run(m) == 0

    def test_diamond_gets_phi(self):
        from repro.frontend import compile_source
        m = compile_source("""
        long pick(long x) {
            long r = 0;
            if (x > 0) r = 1; else r = 2;
            return r;
        }
        """)
        assert Interpreter(m).run("pick", [5]).value == 1
        assert Interpreter(m).run("pick", [-5]).value == 2


class TestPassManager:
    def test_runs_in_order_and_collects_reports(self):
        m = build_indirect_kernel()
        pm = PassManager()
        pm.add(ConstantFoldingPass()).add(DeadCodeEliminationPass())
        reports = pm.run(m)
        assert list(reports) == ["constfold", "dce"]

    def test_rejects_non_pass(self):
        with pytest.raises(TypeError):
            PassManager().add(object())

    def test_verifies_between_passes(self):
        class BadPass:
            name = "bad"

            def run(self, module):
                # Corrupt: drop the terminator of the first block.
                func = module.functions[0]
                func.entry._instructions.pop()
        m = build_indirect_kernel()
        from repro.ir import VerificationError
        with pytest.raises(VerificationError):
            PassManager().add(BadPass()).run(m)


class TestStrideIndirectBaseline:
    def test_matches_simple_static_pattern(self):
        m = build_indirect_kernel(num_buckets=1024)
        f = m.function("kernel")
        f.arg("keys").array_size = Constant(INT64, 5000)
        report = StrideIndirectBaselinePass().run(m)
        assert report.num_prefetches == 1
        verify_module(m)
        assert sum(1 for i in f.instructions()
                   if isinstance(i, Prefetch)) == 2

    def test_requires_static_lookahead_size(self):
        # Argument-valued size: the ICC-like pass bails.
        m = build_indirect_kernel()  # keys annotated with %n
        report = StrideIndirectBaselinePass().run(m)
        assert report.num_prefetches == 0
        reasons = [reason for _, reason in report.skipped]
        assert any("statically" in r for r in reasons)

    def test_misses_hash_pattern(self):
        # RA-style hashing between the loads: "pattern too complex".
        from repro.workloads import RandomAccess
        m = RandomAccess(nblocks=1, table_size=1 << 10).build()
        report = StrideIndirectBaselinePass().run(m)
        assert report.num_prefetches == 0

    def test_misses_graph500(self):
        from repro.workloads import Graph500
        m = Graph500(scale=5, edge_factor=4).build()
        report = StrideIndirectBaselinePass().run(m)
        assert report.num_prefetches == 0

    def test_catches_cg(self):
        from repro.workloads import ConjugateGradient
        m = ConjugateGradient(nrows=10, row_nnz=4, x_size=64).build()
        report = StrideIndirectBaselinePass().run(m)
        assert report.num_prefetches == 1  # x[colidx[k]]

    def test_preserves_semantics(self):
        import numpy as np

        def run(module):
            rng = np.random.default_rng(1)
            mem = Memory()
            # The annotation promises 500 elements, so allocate 500 and
            # use the first 300 (C programs rely on exactly this slack).
            keys = mem.allocate(8, 500, "keys")
            keys.fill(np.concatenate(
                [rng.integers(0, 1024, 300),
                 np.zeros(200, dtype=np.int64)]))
            buckets = mem.allocate(8, 1024, "buckets")
            Interpreter(module, mem).run(
                "kernel", [keys.base, buckets.base, 300])
            return list(buckets.data)

        plain = build_indirect_kernel(num_buckets=1024)
        plain.function("kernel").arg("keys").array_size = \
            Constant(INT64, 500)
        transformed = build_indirect_kernel(num_buckets=1024)
        transformed.function("kernel").arg("keys").array_size = \
            Constant(INT64, 500)
        StrideIndirectBaselinePass().run(transformed)
        assert run(plain) == run(transformed)
