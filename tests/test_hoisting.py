"""Tests for prefetch loop hoisting (§4.6)."""

import numpy as np
import pytest

from repro.ir import (Constant, INT64, IRBuilder, Module, Prefetch, VOID,
                      pointer, verify_module)
from repro.machine import Interpreter, Memory
from repro.passes import IndirectPrefetchPass, PrefetchOptions


def build_pointer_chase_in_inner_loop() -> Module:
    """Outer loop picks a list head from an array; the inner loop chases
    ``next`` indices — the §4.6 pattern: the *first* node address is
    computable at the inner loop's preheader."""
    m = Module("chase")
    f = m.create_function(
        "kernel", VOID,
        [("heads", pointer(INT64)), ("nodes", pointer(INT64)),
         ("out", pointer(INT64)), ("n", INT64)])
    for name in ("heads", "nodes", "out"):
        f.arg(name).noalias = True
    f.arg("heads").array_size = f.arg("n")
    b = IRBuilder()
    entry = f.add_block("entry")
    outer = f.add_block("outer")
    preheader = f.add_block("walk.pre")
    walk = f.add_block("walk")
    outer_latch = f.add_block("outer.latch")
    exit_ = f.add_block("exit")

    b.set_insert_point(entry)
    g = b.cmp("sgt", f.arg("n"), b.const(0), "g")
    b.br(g, outer, exit_)

    b.set_insert_point(outer)
    i = b.phi(INT64, "i")
    head = b.load(b.gep(f.arg("heads"), i, "hp"), "head")
    has = b.cmp("ne", head, b.const(0), "has")
    b.br(has, preheader, outer_latch)

    b.set_insert_point(preheader)
    b.jmp(walk)

    b.set_insert_point(walk)
    cursor = b.phi(INT64, "cursor")
    acc = b.phi(INT64, "acc")
    base = b.mul(cursor, b.const(2), "base")
    value = b.load(b.gep(f.arg("nodes"), base, "vp"), "value")
    acc_next = b.add(acc, value, "acc.next")
    nxt = b.load(b.gep(f.arg("nodes"),
                       b.add(base, b.const(1), "b1"), "np"), "next")
    more = b.cmp("ne", nxt, b.const(0), "more")
    b.br(more, walk, outer_latch)
    cursor.add_incoming(head, preheader)
    cursor.add_incoming(nxt, walk)
    acc.add_incoming(b.const(0), preheader)
    acc.add_incoming(acc_next, walk)

    b.set_insert_point(outer_latch)
    total = b.phi(INT64, "total")
    total.add_incoming(b.const(0), outer)
    total.add_incoming(acc_next, walk)
    b.store(total, b.gep(f.arg("out"), i, "op"))
    i_next = b.add(i, b.const(1), "i.next")
    c = b.cmp("slt", i_next, f.arg("n"), "c")
    b.br(c, outer, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, outer_latch)

    b.set_insert_point(exit_)
    b.ret()
    verify_module(m)
    return m


def _run(module, n=40, pool=200, seed=1):
    rng = np.random.default_rng(seed)
    mem = Memory()
    heads = mem.allocate(8, n, "heads")
    nodes = mem.allocate(8, pool * 2, "nodes")
    out = mem.allocate(8, n, "out")
    # Build random chains of length 1-3 over a scattered pool.
    perm = (rng.permutation(pool - 1) + 1).tolist()
    cursor = 0
    for i in range(n):
        length = int(rng.integers(1, 4))
        chain = [perm[(cursor + j) % len(perm)] for j in range(length)]
        cursor += length
        heads.data[i] = chain[0]
        for j, node in enumerate(chain):
            nodes.data[node * 2] = int(rng.integers(1, 100))
            nodes.data[node * 2 + 1] = chain[j + 1] if j + 1 < length \
                else 0
    Interpreter(module, mem).run(
        "kernel", [heads.base, nodes.base, out.base, n])
    return list(out.data)


class TestHoisting:
    def test_disabled_by_default(self):
        module = build_pointer_chase_in_inner_loop()
        report = IndirectPrefetchPass().run(module)
        assert not any(f.hoisted for f in report.functions)

    def test_hoists_first_node_prefetch(self):
        module = build_pointer_chase_in_inner_loop()
        report = IndirectPrefetchPass(
            PrefetchOptions(enable_hoisting=True)).run(module)
        verify_module(module)
        hoisted = [h for f in report.functions for h in f.hoisted]
        assert hoisted
        func = module.function("kernel")
        pre = func.block("walk.pre")
        assert any(isinstance(i, Prefetch) for i in pre)

    def test_hoisting_preserves_semantics(self):
        plain = build_pointer_chase_in_inner_loop()
        transformed = build_pointer_chase_in_inner_loop()
        IndirectPrefetchPass(
            PrefetchOptions(enable_hoisting=True)).run(transformed)
        assert _run(plain) == _run(transformed)

    def test_hoisting_on_hj8_is_safe(self):
        from repro.workloads import hj8
        from repro.machine import Memory as Mem
        wl = hj8(num_probes=300, num_buckets=1 << 8)
        module = wl.build()
        IndirectPrefetchPass(
            PrefetchOptions(enable_hoisting=True)).run(module)
        verify_module(module)
        memory = Mem()
        prepared = wl.prepare(memory)
        Interpreter(module, memory).run(wl.entry, prepared.args)
        prepared.validate()
