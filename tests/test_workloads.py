"""Workload tests: every benchmark validates under every variant.

These run at small sizes in functional (untimed) mode, checking that the
kernels compute correct results and that the passes transform each one
the way §6.1 of the paper describes.
"""

import numpy as np
import pytest

from repro.ir import Load, Prefetch, verify_module
from repro.machine import Interpreter, Memory
from repro.passes import (IndirectPrefetchPass, PrefetchOptions,
                          RejectReason, StrideIndirectBaselinePass)
from repro.workloads import (ConjugateGradient, Graph500, HashJoin,
                             IntegerSort, RandomAccess, bfs_reference,
                             generate_kronecker, hj2, hj8,
                             paper_benchmarks)

SMALL = {
    "IS": lambda: IntegerSort(num_keys=1500, num_buckets=1 << 12),
    "CG": lambda: ConjugateGradient(nrows=60, row_nnz=6, x_size=512,
                                    repeats=2),
    "RA": lambda: RandomAccess(nblocks=4, table_size=1 << 12),
    "HJ-2": lambda: hj2(num_probes=800, num_buckets=1 << 10),
    "HJ-8": lambda: hj8(num_probes=400, num_buckets=1 << 8),
    "G500": lambda: Graph500(scale=8, edge_factor=6),
}


def run_functional(workload, variant, **knobs):
    module = workload.build_variant(variant, **knobs)
    verify_module(module)
    memory = Memory()
    prepared = workload.prepare(memory)
    Interpreter(module, memory).run(workload.entry, prepared.args)
    prepared.validate()
    return module


@pytest.mark.parametrize("name", list(SMALL))
@pytest.mark.parametrize("variant", ["plain", "auto", "manual", "icc"])
def test_variant_correctness(name, variant):
    """Every workload computes correct results under every variant."""
    run_functional(SMALL[name](), variant)


@pytest.mark.parametrize("name", list(SMALL))
@pytest.mark.parametrize("lookahead", [1, 4, 64, 256])
def test_auto_correct_for_any_lookahead(name, lookahead):
    run_functional(SMALL[name](), "auto", lookahead=lookahead)


class TestIntegerSort:
    def test_auto_chain_shape(self):
        module = SMALL["IS"]().build()
        report = IndirectPrefetchPass().run(module)
        (acc,) = report.accepted
        assert acc.num_loads == 2
        assert [s.offset for s in acc.schedules] == [64, 32]

    def test_icc_catches_is(self):
        module = SMALL["IS"]().build()
        report = StrideIndirectBaselinePass().run(module)
        assert report.num_prefetches == 1

    def test_manual_schemes(self):
        wl = SMALL["IS"]()
        for knobs in (dict(include_stride=False),
                      dict(include_indirect=False),
                      dict(include_stride=True, include_indirect=True)):
            run_functional(wl, "manual", **knobs)

    def test_fig2_intuitive_has_one_prefetch(self):
        module = SMALL["IS"]().build_manual(include_stride=False)
        f = module.function("kernel")
        assert sum(1 for i in f.instructions()
                   if isinstance(i, Prefetch)) == 1


class TestConjugateGradient:
    def test_auto_accepts_inner_chain(self):
        module = SMALL["CG"]().build()
        report = IndirectPrefetchPass().run(module)
        accepted_names = {a.load.name for a in report.accepted}
        assert "xv" in accepted_names

    def test_non_canonical_iv_handled(self):
        # The inner IV starts at rowstr[i]; the pass must still work.
        module = SMALL["CG"]().build()
        report = IndirectPrefetchPass(
            PrefetchOptions(require_canonical_iv=True)).run(module)
        assert not report.accepted  # prototype restriction refuses it
        module2 = SMALL["CG"]().build()
        report2 = IndirectPrefetchPass().run(module2)
        assert report2.accepted

    def test_repeats_affect_iterations(self):
        wl = ConjugateGradient(nrows=10, row_nnz=4, x_size=128,
                               repeats=3)
        memory = Memory()
        prepared = wl.prepare(memory)
        assert prepared.iterations == 10 * 4 * 3


class TestRandomAccess:
    def test_auto_covers_update_loop_only(self):
        module = SMALL["RA"]().build()
        report = IndirectPrefetchPass().run(module)
        assert any(a.clamp.source == "argument" for a in report.accepted)

    def test_icc_misses_hash(self):
        module = SMALL["RA"]().build()
        assert StrideIndirectBaselinePass().run(module).num_prefetches == 0

    def test_mix_function_reference_matches_ir(self):
        from repro.workloads.random_access import _mix64
        # One block; if the host-side reference diverged from the IR
        # semantics, validation in run_functional would fail.
        run_functional(RandomAccess(nblocks=1, table_size=1 << 10),
                       "plain")
        assert _mix64(0) == 0


class TestHashJoin:
    @staticmethod
    def _alloc(memory, name):
        return next(a for a in memory.allocations if a.name == name)

    def test_hj2_no_chain_walked(self):
        wl = SMALL["HJ-2"]()
        memory = Memory()
        wl.prepare(memory)
        table = self._alloc(memory, "table")
        # Every bucket's next pointer is the end-of-chain sentinel.
        assert all(v == 0 for v in table.data[2::4])

    def test_hj8_every_bucket_has_three_nodes(self):
        wl = SMALL["HJ-8"]()
        memory = Memory()
        wl.prepare(memory)
        table = self._alloc(memory, "table")
        nodes = self._alloc(memory, "nodes")
        heads = table.data[2::4]
        assert all(h != 0 for h in heads)
        # Walk one chain fully.
        node = heads[0]
        hops = 0
        while node != 0:
            node = nodes.data[node * 4 + 2]
            hops += 1
        assert hops == 3

    def test_auto_rejects_chain_walk(self):
        module = SMALL["HJ-8"]().build()
        report = IndirectPrefetchPass().run(module)
        reasons = {r.reason for f in report.functions for r in f.rejected}
        assert RejectReason.NON_INDUCTION_PHI in reasons
        # The bucket loads are still prefetched.
        assert report.accepted

    def test_manual_stagger_depths(self):
        wl = SMALL["HJ-8"]()
        for depth in (1, 2, 3, 4):
            module = run_functional(wl, "manual", stagger_depth=depth)
            f = module.function("kernel")
            pf = sum(1 for i in f.instructions()
                     if isinstance(i, Prefetch))
            assert pf == 1 + depth  # stride + staggered chain

    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            HashJoin(3)
        with pytest.raises(ValueError):
            HashJoin(2, num_buckets=1000)


class TestGraph500:
    def test_auto_report_matches_paper_story(self):
        module = SMALL["G500"]().build()
        report = IndirectPrefetchPass().run(module)
        level_report = next(f for f in report.functions
                            if f.function.name == "bfs_level")
        accepted = {a.load.name for a in level_report.accepted}
        # Work->vertex chains (lo/hi) and edge->parent chain (pw) are
        # picked up...
        assert "pw" in accepted
        assert accepted & {"lo", "hi"}
        # ...but the edge-list load itself is a plain stride under the
        # innermost IV and is left to the hardware prefetcher (the §6.1
        # "cannot pick up prefetches to the edge list" limitation).
        rejected = {r.load.name: r.reason for r in level_report.rejected}
        assert rejected.get("w") is RejectReason.NOT_INDIRECT

    def test_parent_clamp_uses_loop_bound(self):
        module = SMALL["G500"]().build()
        report = IndirectPrefetchPass().run(module)
        level_report = next(f for f in report.functions
                            if f.function.name == "bfs_level")
        pw = next(a for a in level_report.accepted
                  if a.load.name == "pw")
        assert pw.clamp.source == "loop"

    def test_bfs_reference_agrees_with_networkx(self):
        import networkx as nx
        graph = generate_kronecker(7, 4, seed=3)
        root = 0
        while graph.degree(root) == 0:
            root += 1
        parent = bfs_reference(graph, root)
        g = nx.Graph()
        g.add_nodes_from(range(graph.num_vertices))
        for v in range(graph.num_vertices):
            for e in range(graph.xoff[v], graph.xoff[v + 1]):
                g.add_edge(v, int(graph.xadj[e]))
        reachable = nx.node_connected_component(g, root)
        visited = {v for v in range(graph.num_vertices) if parent[v] >= 0}
        assert visited == reachable
        # Parent edges must exist in the graph.
        for v in visited - {root}:
            assert g.has_edge(v, int(parent[v]))

    def test_kronecker_csr_well_formed(self):
        graph = generate_kronecker(6, 5, seed=1)
        assert graph.xoff[0] == 0
        assert graph.xoff[-1] == graph.num_directed_edges
        assert (np.diff(graph.xoff) >= 0).all()
        assert (graph.xadj < graph.num_vertices).all()
        assert (graph.xadj >= 0).all()

    def test_kronecker_is_symmetric(self):
        graph = generate_kronecker(5, 4, seed=2)
        edges = set()
        for v in range(graph.num_vertices):
            for e in range(graph.xoff[v], graph.xoff[v + 1]):
                edges.add((v, int(graph.xadj[e])))
        assert all((b, a) in edges for (a, b) in edges)

    def test_kronecker_degree_skew(self):
        # R-MAT graphs are power-law-ish: the max degree far exceeds
        # the mean.
        graph = generate_kronecker(10, 8, seed=4)
        degrees = np.diff(graph.xoff)
        assert degrees.max() > 5 * degrees.mean()


class TestSuiteFactory:
    def test_paper_benchmarks_names(self):
        names = [wl.name for wl in paper_benchmarks(small=True)]
        assert names == ["IS", "CG", "RA", "HJ-2", "HJ-8",
                         "G500-s16", "G500-s21"]

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            SMALL["IS"]().build_variant("nope")
