"""Property-based tests (hypothesis) on core invariants.

The central property: for randomly generated indirect-access kernels and
random pass configurations, the prefetch pass never changes architectural
results and never introduces faults.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.ir import (Constant, INT64, parse_module, print_module,
                      verify_module)
from repro.machine import Cache, Interpreter, Memory
from repro.passes import (ConstantFoldingPass, DeadCodeEliminationPass,
                          IndirectPrefetchPass, PrefetchOptions)
from tests.conftest import build_indirect_kernel


class TestPassEquivalence:
    """The pass is semantics-preserving on a family of random kernels."""

    @staticmethod
    def _random_kernel_source(ops: list[str]) -> str:
        """A kernel whose indirect index goes through a random pure
        arithmetic pipeline (like RA's hash)."""
        lines = []
        expr = "k"
        for i, op in enumerate(ops):
            if op == "xorshift":
                lines.append(f"long t{i} = {expr} ^ ({expr} >> 9);")
            elif op == "mul":
                lines.append(f"long t{i} = {expr} * 2654435761;")
            elif op == "add":
                lines.append(f"long t{i} = {expr} + 12345;")
            elif op == "shl":
                lines.append(f"long t{i} = {expr} << 3;")
            expr = f"t{i}"
        body = "\n                ".join(lines)
        return f"""
        void kernel(long* restrict keys, long* restrict table, long n) {{
            for (long i = 0; i < n; i++) {{
                long k = keys[i];
                {body}
                long slot = {expr} & 1023;
                table[slot] += 1;
            }}
        }}
        """

    @given(ops=st.lists(st.sampled_from(
        ["xorshift", "mul", "add", "shl"]), min_size=0, max_size=4),
        lookahead=st.integers(1, 128),
        n=st.integers(1, 200),
        stride=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_random_hash_kernels_equivalent(self, ops, lookahead, n,
                                            stride):
        source = self._random_kernel_source(ops)

        def run(transform: bool) -> list[int]:
            module = compile_source(source)
            if transform:
                IndirectPrefetchPass(PrefetchOptions(
                    lookahead=lookahead,
                    emit_stride_prefetch=stride)).run(module)
            verify_module(module)
            mem = Memory()
            keys = mem.allocate(8, max(n, 1), "keys")
            rng = np.random.default_rng(7)
            keys.fill(rng.integers(0, 2**40, n))
            table = mem.allocate(8, 1024, "table")
            Interpreter(module, mem).run(
                "kernel", [keys.base, table.base, n])
            return list(table.data)

        assert run(False) == run(True)

    @given(lookahead=st.integers(1, 300), n=st.integers(1, 400))
    @settings(max_examples=30, deadline=None)
    def test_clamp_never_faults(self, lookahead, n):
        module = build_indirect_kernel(num_buckets=512)
        IndirectPrefetchPass(
            PrefetchOptions(lookahead=lookahead)).run(module)
        mem = Memory()
        keys = mem.allocate(8, n, "keys")
        rng = np.random.default_rng(0)
        keys.fill(rng.integers(0, 512, n))
        buckets = mem.allocate(8, 512, "buckets")
        # Must complete without MemoryFault despite arbitrary look-ahead.
        Interpreter(module, mem).run(
            "kernel", [keys.base, buckets.base, n])


class TestRoundTripProperties:
    @given(st.lists(st.sampled_from(
        ["add", "sub", "mul", "and", "or", "xor"]),
        min_size=1, max_size=6),
        st.lists(st.integers(-2**40, 2**40), min_size=6, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_print_parse_execute_identical(self, ops, constants):
        lines = ["func @f(%x: i64) -> i64 {", "entry:"]
        prev = "%x"
        for i, (op, c) in enumerate(zip(ops, constants)):
            lines.append(f"  %v{i} = {op} i64 {prev}, {c}")
            prev = f"%v{i}"
        lines += [f"  ret i64 {prev}", "}"]
        text = "\n".join(lines)
        module = parse_module(text)
        verify_module(module)
        reparsed = parse_module(print_module(module))
        x = constants[0] | 1
        a = Interpreter(module).run("f", [x]).value
        b = Interpreter(reparsed).run("f", [x]).value
        assert a == b

    @given(st.integers(-2**63, 2**63 - 1), st.integers(0, 63))
    @settings(max_examples=50, deadline=None)
    def test_shift_semantics_match_hardware(self, value, amount):
        text = f"""
        func @f(%x: i64) -> i64 {{
        entry:
          %l = lshr i64 %x, {amount}
          %a = ashr i64 %x, {amount}
          %d = sub i64 %l, %a
          ret i64 %d
        }}
        """
        result = Interpreter(parse_module(text)).run("f", [value]).value
        mask = (1 << 64) - 1
        expected_l = (value & mask) >> amount
        expected_a = value >> amount
        expected = ((expected_l - expected_a) & mask)
        if expected >= 1 << 63:
            expected -= 1 << 64
        assert result == expected


class TestConstantFoldingProperty:
    @given(st.integers(-2**62, 2**62), st.integers(-2**62, 2**62),
           st.sampled_from(["add", "sub", "mul", "and", "or", "xor",
                            "shl", "lshr", "ashr"]))
    @settings(max_examples=60, deadline=None)
    def test_fold_agrees_with_interpreter(self, a, b, op):
        text = f"""
        func @f() -> i64 {{
        entry:
          %r = {op} i64 {a}, {b}
          ret i64 %r
        }}
        """
        interpreted = Interpreter(parse_module(text)).run("f", []).value
        module = parse_module(text)
        ConstantFoldingPass().run(module)
        ret = module.function("f").entry.terminator
        assert isinstance(ret.value, Constant)
        assert ret.value.value == interpreted


class TestCacheProperties:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_lru_stack_property(self, accesses):
        """A hit in a small LRU cache implies a hit in a bigger one with
        the same associativity-per-set structure (inclusion property
        holds for fully-associative LRU)."""
        small = Cache("s", 8 * 64, 8, 64, 1)    # 8 lines, 1 set
        large = Cache("l", 16 * 64, 16, 64, 1)  # 16 lines, 1 set
        for line in accesses:
            small_hit = small.lookup(line) is not None
            large_hit = large.lookup(line) is not None
            assert not (small_hit and not large_hit)
            small.insert(line, 0.0)
            large.insert(line, 0.0)

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_immediate_rehit(self, accesses):
        cache = Cache("c", 4096, 4, 64, 1)
        for line in accesses:
            cache.insert(line, 0.0)
            assert cache.lookup(line) is not None


class TestTimingMonotonicity:
    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_more_dram_latency_never_speeds_up(self, scale):
        from dataclasses import replace
        from repro.machine import A53
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1 << 14, 400)

        def cycles(latency):
            module = build_indirect_kernel(num_buckets=1 << 14)
            config = replace(A53, dram_latency=latency)
            mem = Memory()
            keys = mem.allocate(8, 400, "keys")
            keys.fill(values)
            buckets = mem.allocate(8, 1 << 14, "buckets")
            interp = Interpreter(module, mem, machine=config)
            return interp.run("kernel",
                              [keys.base, buckets.base, 400]).cycles

        assert cycles(100 * scale) >= cycles(50)
