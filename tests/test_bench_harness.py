"""Tests for the experiment harness: runner, reporting, small figures."""

import pytest

from repro.bench import (fig2_prefetch_schemes, format_series,
                         format_table, geometric_mean, manual_knobs_for,
                         run_variant, speedup_row, table1_rows)
from repro.machine import A53, HASWELL
from repro.workloads import Graph500, IntegerSort, hj2


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["Name", "Value"],
                            [["alpha", 1.2345], ["b", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        assert "1.23" in text  # floats rendered to 2 decimals
        # Columns align: separators in the same position on all rows.
        assert len({line.index("|") for line in lines
                    if "|" in line}) == 1

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], "My Title")
        assert text.startswith("My Title\n========")

    def test_format_series(self):
        text = format_series("T", "c", [1, 2],
                             {"A": {1: 0.5, 2: 1.5},
                              "B": {1: 2.0}})
        assert "0.50" in text and "1.50" in text and "2.00" in text
        lines = text.splitlines()
        assert lines[2].split("|")[0].strip() == "c"


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_element(self):
        assert geometric_mean([3.0]) == 3.0

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestRunner:
    def test_run_variant_validates_and_counts(self):
        workload = IntegerSort(num_keys=800, num_buckets=1 << 12)
        result = run_variant(workload, "auto", HASWELL)
        assert result.workload == "IS"
        assert result.machine == "Haswell"
        assert result.cycles > 0
        assert result.prefetches == 2 * 800
        assert result.iterations == 800
        assert result.cycles_per_iteration == pytest.approx(
            result.cycles / 800)

    def test_speedup_row(self):
        workload = IntegerSort(num_keys=800, num_buckets=1 << 16)
        row = speedup_row(workload, A53, variants=("auto",))
        assert "auto" in row.speedups
        assert row.speedups["auto"] > 0.5
        assert row.results["plain"].prefetches == 0

    def test_manual_knobs_for_graph500(self):
        g = Graph500(scale=5, edge_factor=4)
        assert manual_knobs_for(g, HASWELL) == \
            {"inner_parent_prefetch": False}
        assert manual_knobs_for(g, A53) == \
            {"inner_parent_prefetch": True}
        assert manual_knobs_for(IntegerSort(), HASWELL) == {}

    def test_table1_rows_complete(self):
        rows = table1_rows()
        assert len(rows) == 4
        assert all("Caches" in r for r in rows)


class TestDeterminism:
    def test_identical_runs_identical_cycles(self):
        def once():
            return run_variant(
                IntegerSort(num_keys=500, num_buckets=1 << 12),
                "auto", HASWELL).cycles
        assert once() == once()

    def test_variants_share_inputs(self):
        # plain and auto see the same generated keys (same workload
        # seed), so the comparison is apples-to-apples.
        wl_a = IntegerSort(num_keys=500, num_buckets=1 << 12, seed=9)
        wl_b = IntegerSort(num_keys=500, num_buckets=1 << 12, seed=9)
        a = run_variant(wl_a, "plain", HASWELL)
        b = run_variant(wl_b, "plain", HASWELL)
        assert a.cycles == b.cycles
