"""Golden test: the pass's output for the paper's Fig. 3 example.

Fig. 3 shows the IR for the integer-sort loop before (a) and after (c)
the pass: a clamped look-ahead load feeding an indirect prefetch at
offset 32, plus an unclamped stride prefetch at offset 64.  This test
pins the exact generated sequence so codegen regressions are caught
verbatim, not just behaviourally.
"""

from repro.ir import parse_module, print_function, verify_module
from repro.passes import IndirectPrefetchPass

# Fig. 3(a): the original compiler IR (allocs give static bounds).
FIG3A = """
func @kernel(%size: i64) -> void {
entry:
  %a = alloc i64, 4096
  %b = alloc i64, 65536
  %guard = cmp sgt i64 %size, 0
  br %guard, loop, exit
loop:
  %i = phi i64 [0, entry], [%i.1, loop]
  %t1 = gep i64* %a, %i
  %t2 = load i64* %t1
  %t3 = gep i64* %b, %t2
  %t4 = load i64* %t3
  %t5 = add i64 %t4, 1
  store i64 %t5, %t3
  %i.1 = add i64 %i, 1
  %cond = cmp slt i64 %i.1, %size
  br %cond, loop, exit
exit:
  ret
}
"""

# The loop body the pass must produce (Fig. 3(c) interleaved before the
# original load, with the clamp folded against the static alloc bound).
EXPECTED_LOOP = """\
loop:
  %i = phi i64 [0, entry], [%i.1, loop]
  %t1 = gep i64* %a, %i
  %t2 = load i64* %t1
  %t3 = gep i64* %b, %t2
  %pf.iv = add i64 %i, 64
  %t1.pf = gep i64* %a, %pf.iv
  prefetch i64* %t1.pf
  %pf.iv.1 = add i64 %i, 32
  %pf.cl = cmp slt i64 %pf.iv.1, 4095
  %pf.iv.c = select i64 %pf.cl, %pf.iv.1, 4095
  %t1.pf.1 = gep i64* %a, %pf.iv.c
  %t2.pf = load i64* %t1.pf.1
  %t3.pf = gep i64* %b, %t2.pf
  prefetch i64* %t3.pf
  %t4 = load i64* %t3
  %t5 = add i64 %t4, 1
  store i64 %t5, %t3
  %i.1 = add i64 %i, 1
  %cond = cmp slt i64 %i.1, %size
  br %cond, loop, exit"""


def test_fig3_golden_codegen():
    module = parse_module(FIG3A)
    report = IndirectPrefetchPass().run(module)
    verify_module(module)

    (accepted,) = report.accepted
    assert accepted.clamp.source == "alloc"
    assert [s.offset for s in accepted.schedules] == [64, 32]

    text = print_function(module.function("kernel"))
    start = text.index("loop:")
    end = text.index("exit:")
    assert text[start:end].strip() == EXPECTED_LOOP.strip()


def test_fig3_output_is_stable_over_reparse():
    module = parse_module(FIG3A)
    IndirectPrefetchPass().run(module)
    text = print_function(module.function("kernel"))
    reparsed = parse_module("\n".join([text]))
    verify_module(reparsed)
    assert print_function(reparsed.function("kernel")) == text
