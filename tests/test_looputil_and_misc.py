"""Tests for the loop-building helper and assorted smaller pieces."""

import pytest

from repro.ir import (INT64, IRBuilder, Module, VOID, pointer,
                      verify_module)
from repro.machine import Interpreter, Memory
from repro.workloads.looputil import counted_loop


def build_with_counted_loop(start, end_value):
    m = Module("m")
    f = m.create_function("f", VOID, [("out", pointer(INT64)),
                                      ("n", INT64)])
    b = IRBuilder()
    b.set_insert_point(f.add_block("entry"))

    def body(b, iv):
        b.store(iv, b.gep(f.arg("out"), iv))

    counted_loop(b, f, start, f.arg("n") if end_value is None
                 else b.const(end_value), body, "loop")
    b.ret()
    verify_module(m)
    return m


class TestCountedLoop:
    def _run(self, module, n):
        mem = Memory()
        out = mem.allocate(8, max(n, 1) + 8, "out")
        Interpreter(module, mem).run("f", [out.base, n])
        return out.data

    def test_basic_iteration_space(self):
        m = build_with_counted_loop(0, None)
        data = self._run(m, 5)
        assert data[:5] == [0, 1, 2, 3, 4]

    def test_zero_trip_guard(self):
        m = build_with_counted_loop(0, None)
        data = self._run(m, 0)
        assert all(v == 0 for v in data)

    def test_nonzero_start(self):
        m = build_with_counted_loop(2, None)
        data = self._run(m, 5)
        assert data[:5] == [0, 0, 2, 3, 4]

    def test_produces_analyzable_iv(self):
        from repro.analysis import InductionAnalysis
        m = build_with_counted_loop(0, None)
        analysis = InductionAnalysis(m.function("f"))
        (iv,) = analysis.all
        assert iv.is_canonical
        assert iv.bound is not None and not iv.bound.inclusive

    def test_nested_loops_verify(self):
        m = Module("m")
        f = m.create_function("f", VOID, [("out", pointer(INT64))])
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        counter = [0]

        def outer_body(b, i):
            def inner_body(b, j):
                counter[0] += 1  # construction-time count
            counted_loop(b, f, 0, b.const(3), inner_body, "inner")

        counted_loop(b, f, 0, b.const(2), outer_body, "outer")
        b.ret()
        verify_module(m)
        from repro.analysis import LoopInfo
        info = LoopInfo(m.function("f"))
        assert len(info.loops) == 2


class TestInterpreterStepping:
    def test_run_stepped_yields_progress(self, indirect_module):
        from repro.machine import HASWELL
        mem = Memory()
        keys = mem.allocate(8, 3000, "keys")
        keys.fill([i % 64 for i in range(3000)])
        buckets = mem.allocate(8, 64, "buckets")
        interp = Interpreter(indirect_module, mem, machine=HASWELL)
        times = list(interp.run_stepped(
            "kernel", [keys.base, buckets.base, 3000],
            yield_every=2000))
        assert len(times) >= 2
        assert times == sorted(times)  # core time is monotone

    def test_functional_mode_never_yields(self, indirect_module):
        mem = Memory()
        keys = mem.allocate(8, 100, "keys")
        buckets = mem.allocate(8, 64, "buckets")
        interp = Interpreter(indirect_module, mem)
        times = list(interp.run_stepped(
            "kernel", [keys.base, buckets.base, 100], yield_every=10))
        assert times == []  # no core -> no timestamps


class TestPrefetchReportAccessors:
    def test_module_level_report_aggregates(self, indirect_module):
        from repro.passes import IndirectPrefetchPass
        report = IndirectPrefetchPass().run(indirect_module)
        assert report.num_prefetches == 2
        assert len(report.accepted) == 1
        assert len(report.rejected) == 1
        assert len(report.functions) == 1
