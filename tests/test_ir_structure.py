"""Tests for blocks, functions, modules, builder, verifier, and the
textual printer/parser round trip."""

import pytest

from repro.ir import (Constant, INT64, IRBuilder, Module, VOID,
                      VerificationError, parse_function, parse_module,
                      pointer, print_function, print_module,
                      verify_function, verify_module)
from tests.conftest import build_diamond_function, build_indirect_kernel


class TestBlocksAndFunctions:
    def test_entry_is_first_block(self):
        m = Module("m")
        f = m.create_function("f", VOID)
        a = f.add_block("a")
        f.add_block("b")
        assert f.entry is a

    def test_duplicate_block_names_rejected(self):
        f = Module("m").create_function("f", VOID)
        f.add_block("x")
        with pytest.raises(ValueError):
            f.add_block("x")

    def test_generated_block_names_unique(self):
        f = Module("m").create_function("f", VOID)
        names = {f.add_block().name for _ in range(5)}
        assert len(names) == 5

    def test_append_after_terminator_rejected(self):
        f = Module("m").create_function("f", VOID)
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        b.ret()
        with pytest.raises(ValueError):
            b.add(b.const(1), b.const(2))

    def test_insert_before_and_after(self):
        f = Module("m").create_function("f", VOID)
        block = f.add_block("entry")
        b = IRBuilder()
        b.set_insert_point(block)
        first = b.add(b.const(1), b.const(2), "first")
        third = b.add(b.const(3), b.const(4), "third")
        from repro.ir.instructions import BinOp
        second = BinOp("add", b.const(5), b.const(6), "second")
        block.insert_after(first, second)
        names = [i.name for i in block]
        assert names == ["first", "second", "third"]

    def test_successors_and_predecessors(self):
        m = build_diamond_function()
        f = m.function("f")
        entry = f.block("entry")
        merge = f.block("merge")
        assert set(s.name for s in entry.successors) == {"then", "other"}
        assert set(p.name for p in merge.predecessors) == {"then", "other"}

    def test_phis_and_first_non_phi(self):
        f = build_diamond_function().function("f")
        merge = f.block("merge")
        assert len(merge.phis) == 1
        assert merge.first_non_phi.opcode == "ret"

    def test_duplicate_function_name_rejected(self):
        m = Module("m")
        m.create_function("f", VOID)
        with pytest.raises(ValueError):
            m.create_function("f", VOID)

    def test_module_lookup(self):
        m = Module("m")
        f = m.create_function("f", VOID)
        assert m.function("f") is f
        assert "f" in m
        with pytest.raises(KeyError):
            m.function("g")

    def test_arg_lookup(self):
        f = Module("m").create_function("f", VOID, [("x", INT64)])
        assert f.arg("x").type == INT64
        with pytest.raises(KeyError):
            f.arg("y")


class TestBuilderInsertionPoint:
    def test_builder_without_block_raises(self):
        with pytest.raises(ValueError):
            _ = IRBuilder().block

    def test_insert_before_position(self):
        f = Module("m").create_function("f", VOID)
        block = f.add_block("entry")
        b = IRBuilder()
        b.set_insert_point(block)
        last = b.add(b.const(1), b.const(1), "last")
        b.set_insert_point(block, before=last)
        b.add(b.const(2), b.const(2), "first")
        assert [i.name for i in block] == ["first", "last"]

    def test_smin_emits_cmp_select(self):
        f = Module("m").create_function("f", VOID, [("n", INT64)])
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        b.smin(f.arg("n"), b.const(10))
        opcodes = [i.opcode for i in f.entry]
        assert opcodes == ["cmp", "select"]


class TestVerifier:
    def test_valid_module_passes(self, indirect_module):
        verify_module(indirect_module)

    def test_missing_terminator(self):
        f = Module("m").create_function("f", VOID)
        f.add_block("entry")
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(f)

    def test_use_before_def_in_block(self):
        from repro.ir.instructions import BinOp
        f = Module("m").create_function("f", VOID, [("n", INT64)])
        block = f.add_block("entry")
        b = IRBuilder()
        b.set_insert_point(block)
        first = b.add(f.arg("n"), b.const(1), "first")
        b.ret()
        late = BinOp("add", f.arg("n"), b.const(2), "late")
        block.insert_after(first, late)
        first.set_operand(1, late)  # first now uses a later def
        with pytest.raises(VerificationError, match="before definition"):
            verify_function(f)

    def test_def_does_not_dominate_use(self):
        m = build_diamond_function()
        f = m.function("f")
        then_value = next(i for i in f.block("then") if i.name == "doubled")
        other = f.block("other")
        negated = next(i for i in other if i.name == "negated")
        # Make 'other' use a value defined only in 'then'.
        negated.set_operand(1, then_value)
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(f)

    def test_phi_missing_predecessor(self):
        m = build_diamond_function()
        f = m.function("f")
        phi = f.block("merge").phis[0]
        phi.incoming_blocks[1] = f.block("entry")  # corrupt the edge
        with pytest.raises(VerificationError, match="incoming"):
            verify_function(f)

    def test_phi_after_non_phi(self):
        from repro.ir.instructions import Phi
        f = Module("m").create_function("f", VOID)
        block = f.add_block("entry")
        b = IRBuilder()
        b.set_insert_point(block)
        add = b.add(b.const(1), b.const(1))
        b.ret()
        block.insert_after(add, Phi(INT64))
        with pytest.raises(VerificationError, match="phi after non-phi"):
            verify_function(f)

    def test_terminator_mid_block(self):
        from repro.ir.instructions import Jump, Ret
        f = Module("m").create_function("f", VOID)
        block = f.add_block("entry")
        ret = Ret()
        block.append(ret)
        # Force a second instruction after the terminator.
        block._instructions.append(Jump(block))
        block._instructions[-1].parent = block
        with pytest.raises(VerificationError):
            verify_function(f)


class TestPrinterParserRoundTrip:
    def test_indirect_kernel_roundtrip(self, indirect_module):
        text = print_module(indirect_module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text

    def test_diamond_roundtrip(self, diamond_module):
        text = print_module(diamond_module)
        assert print_module(parse_module(text)) == text

    def test_prefetched_kernel_roundtrip(self, indirect_module):
        from repro.passes import IndirectPrefetchPass
        IndirectPrefetchPass().run(indirect_module)
        text = print_module(indirect_module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text

    def test_forward_reference_in_phi(self):
        text = """
        func @f(%n: i64) -> i64 {
        entry:
          jmp loop
        loop:
          %i = phi i64 [0, entry], [%i.next, loop]
          %i.next = add i64 %i, 1
          %c = cmp slt i64 %i.next, %n
          br %c, loop, exit
        exit:
          ret i64 %i.next
        }
        """
        f = parse_function(text)
        verify_function(f)
        assert len(f.blocks) == 3

    def test_pure_attribute_roundtrip(self):
        text = "func pure @g(%x: i64) -> i64 {\nentry:\n  ret i64 %x\n}"
        f = parse_function(text)
        assert f.pure
        assert "func pure @g" in print_function(f)

    def test_float_constant_roundtrip(self):
        text = """
        func @f() -> f64 {
        entry:
          %x = fadd f64 1.5, 2.25
          ret f64 %x
        }
        """
        f = parse_function(text)
        assert print_function(f).count("1.5") == 1

    def test_call_roundtrip(self):
        text = """
        func @callee(%x: i64) -> i64 {
        entry:
          ret i64 %x
        }

        func @caller() -> i64 {
        entry:
          %r = call @callee(i64 7)
          ret i64 %r
        }
        """
        m = parse_module(text)
        verify_module(m)
        assert print_module(parse_module(print_module(m))) == \
            print_module(m)

    def test_parse_errors(self):
        from repro.ir import ParseError
        with pytest.raises(ParseError):
            parse_module("func @f() -> i64 {\nentry:\n  ret i64 %undefined\n}")
        with pytest.raises(ParseError):
            parse_module("not a function")
        with pytest.raises(ParseError):
            parse_module("func @f() -> void {\nentry:\n  ret")
