"""Unit tests for the IR type system."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import (FLOAT32, FLOAT64, INT1, INT8, INT16, INT32,
                            INT64, VOID, FloatType, FunctionType, IntType,
                            PointerType, VoidType, parse_type, pointer)


class TestIntType:
    def test_sizes(self):
        assert INT8.size == 1
        assert INT16.size == 2
        assert INT32.size == 4
        assert INT64.size == 8

    def test_i1_size_is_one_byte(self):
        assert INT1.size == 1

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(7)

    def test_range_bounds(self):
        assert INT8.min_value == -128
        assert INT8.max_value == 127
        assert INT64.max_value == 2**63 - 1

    def test_wrap_positive_overflow(self):
        assert INT8.wrap(128) == -128
        assert INT8.wrap(255) == -1
        assert INT8.wrap(256) == 0

    def test_wrap_negative(self):
        assert INT8.wrap(-129) == 127

    def test_wrap_identity_in_range(self):
        assert INT32.wrap(12345) == 12345
        assert INT32.wrap(-12345) == -12345

    @given(st.integers())
    def test_wrap_always_in_range(self, value):
        wrapped = INT32.wrap(value)
        assert INT32.min_value <= wrapped <= INT32.max_value

    @given(st.integers(), st.integers())
    def test_wrap_is_congruent_mod_2n(self, a, b):
        # Wrapping preserves congruence classes modulo 2^bits.
        if (a - b) % (1 << 32) == 0:
            assert INT32.wrap(a) == INT32.wrap(b)

    def test_structural_equality(self):
        assert IntType(32) == INT32
        assert IntType(32) != INT64
        assert hash(IntType(32)) == hash(INT32)


class TestFloatAndPointer:
    def test_float_sizes(self):
        assert FLOAT32.size == 4
        assert FLOAT64.size == 8

    def test_bad_float_width(self):
        with pytest.raises(ValueError):
            FloatType(16)

    def test_pointer_size_is_8(self):
        assert pointer(INT32).size == 8
        assert pointer(pointer(INT32)).size == 8

    def test_pointer_equality_structural(self):
        assert pointer(INT32) == PointerType(IntType(32))
        assert pointer(INT32) != pointer(INT64)

    def test_pointer_to_void_rejected(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_void_has_no_size(self):
        with pytest.raises(ValueError):
            _ = VOID.size


class TestFunctionType:
    def test_str(self):
        ft = FunctionType(INT64, (INT32, pointer(INT8)))
        assert str(ft) == "i64 (i32, i8*)"

    def test_equality(self):
        a = FunctionType(VOID, (INT64,))
        b = FunctionType(VOID, (INT64,))
        assert a == b

    def test_no_storage_size(self):
        with pytest.raises(ValueError):
            _ = FunctionType(VOID, ()).size


class TestParseType:
    @pytest.mark.parametrize("text,expected", [
        ("i1", INT1), ("i8", INT8), ("i32", INT32), ("i64", INT64),
        ("f32", FLOAT32), ("f64", FLOAT64), ("void", VOID),
        ("i64*", pointer(INT64)),
        ("i32**", pointer(pointer(INT32))),
        ("f64*", pointer(FLOAT64)),
    ])
    def test_roundtrip(self, text, expected):
        assert parse_type(text) == expected

    @pytest.mark.parametrize("text", ["i64", "f32", "i8*", "i16**"])
    def test_str_then_parse_is_identity(self, text):
        assert str(parse_type(text)) == text

    @pytest.mark.parametrize("bad", ["int", "i3", "void*", "", "x64"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_type(bad)
