"""Unit tests for values, use lists, and instruction constructors."""

import pytest

from repro.ir import (BinOp, Cmp, Constant, GEP, INT1, INT32, INT64,
                      FLOAT64, IRBuilder, Load, Module, Phi, Prefetch,
                      Select, Store, VOID, clone_instruction, pointer)
from repro.ir.instructions import Alloc, Branch, Call, Cast, Jump, Ret
from repro.ir.values import Argument, UndefValue, const


def make_func(module=None):
    module = module or Module("t")
    func = module.create_function(
        "f", VOID, [("p", pointer(INT64)), ("n", INT64)])
    return func


class TestConstants:
    def test_default_type_int(self):
        assert const(5).type == INT64

    def test_default_type_float(self):
        assert const(2.5).type == FLOAT64

    def test_wrapping_on_construction(self):
        c = Constant(INT32, 2**31)
        assert c.value == -(2**31)

    def test_equality_by_type_and_value(self):
        assert Constant(INT64, 3) == Constant(INT64, 3)
        assert Constant(INT64, 3) != Constant(INT32, 3)
        assert Constant(INT64, 3) != Constant(INT64, 4)

    def test_hashable(self):
        assert len({Constant(INT64, 1), Constant(INT64, 1)}) == 1


class TestUseLists:
    def test_uses_tracked_on_construction(self):
        a = const(1)
        b = const(2)
        add = BinOp("add", a, b)
        assert (add, 0) in a.uses
        assert (add, 1) in b.uses

    def test_replace_all_uses_with(self):
        func = make_func()
        n = func.arg("n")
        add = BinOp("add", n, const(1))
        mul = BinOp("mul", add, add)
        replacement = const(7)
        add.replace_all_uses_with(replacement)
        assert mul.operand(0) is replacement
        assert mul.operand(1) is replacement
        assert not add.uses

    def test_replace_with_self_is_noop(self):
        n = make_func().arg("n")
        add = BinOp("add", n, const(1))
        add.replace_all_uses_with(add)  # must not loop or corrupt
        assert n.users == [add]

    def test_set_operand_updates_uses(self):
        a, b, c = const(1), const(2), const(3)
        add = BinOp("add", a, b)
        add.set_operand(1, c)
        assert (add, 1) in c.uses
        assert (add, 1) not in b.uses

    def test_erase_requires_no_uses(self):
        n = make_func().arg("n")
        add = BinOp("add", n, const(1))
        BinOp("mul", add, add)
        with pytest.raises(ValueError):
            add.erase()

    def test_drop_all_references(self):
        n = make_func().arg("n")
        add = BinOp("add", n, const(1))
        add.drop_all_references()
        assert not n.uses


class TestInstructionConstructors:
    def test_binop_type_mismatch(self):
        with pytest.raises(TypeError):
            BinOp("add", const(1), Constant(INT32, 1))

    def test_binop_unknown_opcode(self):
        with pytest.raises(ValueError):
            BinOp("frobnicate", const(1), const(2))

    def test_cmp_produces_i1(self):
        assert Cmp("slt", const(1), const(2)).type == INT1

    def test_cmp_bad_predicate(self):
        with pytest.raises(ValueError):
            Cmp("lt", const(1), const(2))

    def test_select_requires_i1_condition(self):
        with pytest.raises(TypeError):
            Select(const(1), const(2), const(3))

    def test_select_arm_types_must_match(self):
        flag = Cmp("eq", const(1), const(1))
        with pytest.raises(TypeError):
            Select(flag, const(2), const(2.0))

    def test_gep_scales_by_pointee(self):
        func = make_func()
        gep = GEP(func.arg("p"), const(3))
        assert gep.type == pointer(INT64)

    def test_gep_requires_pointer_base(self):
        with pytest.raises(TypeError):
            GEP(const(1), const(0))

    def test_gep_requires_int_index(self):
        func = make_func()
        with pytest.raises(TypeError):
            GEP(func.arg("p"), const(1.5))

    def test_load_type_is_pointee(self):
        func = make_func()
        assert Load(func.arg("p")).type == INT64

    def test_store_type_checks(self):
        func = make_func()
        with pytest.raises(TypeError):
            Store(const(1.0), func.arg("p"))

    def test_store_is_void_with_side_effects(self):
        func = make_func()
        store = Store(const(1), func.arg("p"))
        assert store.HAS_SIDE_EFFECTS
        assert str(store.type) == "void"

    def test_prefetch_requires_pointer(self):
        with pytest.raises(TypeError):
            Prefetch(const(1))

    def test_alloc_static_count(self):
        alloc = Alloc(INT64, const(16))
        assert alloc.static_count == 16
        assert alloc.type == pointer(INT64)

    def test_alloc_dynamic_count(self):
        func = make_func()
        assert Alloc(INT64, func.arg("n")).static_count is None

    def test_phi_incoming_type_check(self):
        phi = Phi(INT64)
        from repro.ir.basicblock import BasicBlock
        with pytest.raises(TypeError):
            phi.add_incoming(const(1.0), BasicBlock("bb"))

    def test_phi_incoming_for_block(self):
        from repro.ir.basicblock import BasicBlock
        phi = Phi(INT64)
        b1, b2 = BasicBlock("b1"), BasicBlock("b2")
        phi.add_incoming(const(1), b1)
        phi.add_incoming(const(2), b2)
        assert phi.incoming_for_block(b2).value == 2
        with pytest.raises(KeyError):
            phi.incoming_for_block(BasicBlock("b3"))

    def test_branch_condition_must_be_i1(self):
        from repro.ir.basicblock import BasicBlock
        with pytest.raises(TypeError):
            Branch(const(1), BasicBlock("a"), BasicBlock("b"))

    def test_call_arity_and_types(self):
        module = Module("m")
        callee = module.create_function("g", INT64, [("x", INT64)])
        with pytest.raises(TypeError):
            Call(callee, [])
        with pytest.raises(TypeError):
            Call(callee, [const(1.0)])
        call = Call(callee, [const(1)])
        assert call.type == INT64

    def test_terminator_flags(self):
        from repro.ir.basicblock import BasicBlock
        assert Jump(BasicBlock("x")).IS_TERMINATOR
        assert Ret().IS_TERMINATOR
        assert not BinOp("add", const(1), const(2)).IS_TERMINATOR


class TestClone:
    def test_clone_remaps_operands(self):
        func = make_func()
        n = func.arg("n")
        add = BinOp("add", n, const(1), "a")
        replacement = const(42)
        value_map = {n: replacement}
        copy = clone_instruction(add, value_map)
        assert copy.operand(0) is replacement
        assert copy is not add
        assert value_map[add] is copy  # chained clones see the copy

    def test_clone_chain(self):
        func = make_func()
        gep = GEP(func.arg("p"), const(2), "g")
        load = Load(gep, "l")
        value_map = {}
        gep_copy = clone_instruction(gep, value_map)
        load_copy = clone_instruction(load, value_map)
        assert load_copy.ptr is gep_copy

    def test_clone_preserves_cmp_predicate(self):
        cmp = Cmp("sle", const(1), const(2))
        copy = clone_instruction(cmp, {})
        assert copy.predicate == "sle"

    def test_clone_rejects_phi(self):
        with pytest.raises(TypeError):
            clone_instruction(Phi(INT64), {})

    def test_clone_name_suffix(self):
        add = BinOp("add", const(1), const(2), "x")
        assert clone_instruction(add, {}).name == "x.pf"
