"""Additional edge-case coverage across the stack."""

import pytest

from repro.ir import (Cast, Constant, FLOAT64, INT1, INT32, INT64,
                      IRBuilder, Module, VOID, parse_module, pointer,
                      print_function, print_module, verify_module)
from repro.machine import Interpreter, Memory
from tests.conftest import build_indirect_kernel


class TestPrinterFormats:
    def _text(self, body, sig="(%x: i64)", ret="i64"):
        return print_function(parse_module(
            f"func @f{sig} -> {ret} {{\nentry:\n{body}\n}}").functions[0])

    def test_select_format(self):
        text = self._text("""
          %c = cmp slt i64 %x, 5
          %s = select i64 %c, %x, 5
          ret i64 %s
        """)
        assert "%s = select i64 %c, %x, 5" in text

    def test_cast_format(self):
        text = self._text("""
          %t = trunc i64 %x to i32
          %e = sext i32 %t to i64
          ret i64 %e
        """)
        assert "%t = trunc i64 %x to i32" in text
        assert "%e = sext i32 %t to i64" in text

    def test_prefetch_and_store_format(self):
        text = self._text("""
          %buf = alloc i64, 4
          prefetch i64* %buf
          store i64 %x, %buf
          ret i64 %x
        """)
        assert "prefetch i64* %buf" in text
        assert "store i64 %x, %buf" in text

    def test_anonymous_values_numbered(self):
        m = Module("m")
        f = m.create_function("f", INT64, [("x", INT64)])
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        v = b.add(f.arg("x"), b.const(1))  # no name
        b.ret(v)
        text = print_function(f)
        assert "%0 = add i64 %x, 1" in text

    def test_name_collisions_uniquified(self):
        m = Module("m")
        f = m.create_function("f", INT64, [("x", INT64)])
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        a1 = b.add(f.arg("x"), b.const(1), "v")
        a2 = b.add(a1, b.const(1), "v")  # duplicate name
        b.ret(a2)
        text = print_function(f)
        assert "%v =" in text and "%v.1 =" in text
        reparsed = parse_module(print_module(m))
        verify_module(reparsed)


class TestInterpreterCasts:
    def _run(self, body, args, sig="(%x: i64)", ret="i64"):
        m = parse_module(f"func @f{sig} -> {ret} {{\nentry:\n{body}\n}}")
        return Interpreter(m).run("f", args).value

    def test_trunc_wraps(self):
        v = self._run("""
          %t = trunc i64 %x to i8
          %e = sext i8 %t to i64
          ret i64 %e
        """, [0x1FF])
        assert v == -1  # 0xFF as signed i8

    def test_zext_masks(self):
        v = self._run("""
          %t = trunc i64 %x to i8
          %z = zext i8 %t to i64
          ret i64 %z
        """, [0x1FF])
        assert v == 0xFF

    def test_sitofp_fptosi(self):
        v = self._run("""
          %f = sitofp i64 %x to f64
          %h = fdiv f64 %f, 2.0
          %b = fptosi f64 %h to i64
          ret i64 %b
        """, [7])
        assert v == 3

    def test_srem_sign(self):
        v = self._run("%r = srem i64 %x, 3\n  ret i64 %r", [-7])
        assert v == -1  # C semantics: trunc-toward-zero remainder

    def test_udiv_treats_as_unsigned(self):
        v = self._run("%r = udiv i64 %x, 2\n  ret i64 %r", [-2])
        assert v == (((1 << 64) - 2) >> 1)


class TestMemorySystemInterplay:
    def test_sw_prefetch_beats_hw_for_irregular(self):
        """Random accesses: the HW prefetcher cannot help, SW can."""
        import numpy as np
        from repro.machine import HASWELL
        rng = np.random.default_rng(11)
        values = rng.integers(0, 1 << 19, 2000)

        def cycles(transform):
            from repro.passes import IndirectPrefetchPass
            module = build_indirect_kernel(num_buckets=1 << 19)
            if transform:
                IndirectPrefetchPass().run(module)
            mem = Memory()
            keys = mem.allocate(8, 2000, "keys")
            keys.fill(values)
            buckets = mem.allocate(8, 1 << 19, "buckets")
            interp = Interpreter(module, mem, machine=HASWELL)
            return interp.run("kernel",
                              [keys.base, buckets.base, 2000]).cycles

        assert cycles(True) < cycles(False)

    def test_hw_prefetcher_alone_covers_sequential(self):
        """Sequential accesses: the HW prefetcher suffices (this is why
        the pass leaves pure strides alone, §4.3)."""
        from repro.machine import HASWELL
        from repro.machine.system import MemorySystem
        ms = MemorySystem(HASWELL)
        t = 0.0
        slow = 0
        for i in range(512):
            ready = ms.load(1, 0x100000 + i * 8, t)
            if ready - t > 40:
                slow += 1
            t = ready
        # After warmup, almost every access is covered.
        assert slow < 32

    def test_prefetch_of_garbage_address_harmless(self):
        from repro.machine import HASWELL
        from repro.machine.system import MemorySystem
        ms = MemorySystem(HASWELL)
        # A prefetch to an arbitrary (unmapped) address must not raise —
        # prefetches are hints and never fault.
        ms.prefetch(1, 0xDEAD0000, 0.0)


class TestWorkloadManualDetails:
    def test_cg_manual_prefetches_three_streams(self):
        from repro.ir import Prefetch
        from repro.workloads import ConjugateGradient
        m = ConjugateGradient(nrows=10, row_nnz=4,
                              x_size=128).build_manual()
        f = m.function("kernel")
        assert sum(1 for i in f.instructions()
                   if isinstance(i, Prefetch)) == 3  # colidx, x, a

    def test_ra_manual_prefetches_in_fill_loop(self):
        from repro.ir import Prefetch
        from repro.workloads import RandomAccess
        m = RandomAccess(nblocks=2, table_size=1 << 10).build_manual()
        f = m.function("kernel")
        fill_blocks = [b for b in f.blocks if b.name.startswith("fill")]
        assert any(isinstance(i, Prefetch)
                   for b in fill_blocks for i in b)

    def test_is_fig2_scheme_knobs(self):
        from repro.ir import Prefetch
        from repro.workloads import IntegerSort
        wl = IntegerSort(num_keys=100, num_buckets=256)
        both = wl.build_manual()
        stride_only = wl.build_manual(include_indirect=False)
        counts = []
        for m in (both, stride_only):
            f = m.function("kernel")
            counts.append(sum(1 for i in f.instructions()
                              if isinstance(i, Prefetch)))
        assert counts == [2, 1]

    def test_graph500_manual_edge_prefetch_lines(self):
        from repro.ir import Prefetch
        from repro.workloads import Graph500
        m = Graph500(scale=6, edge_factor=4).build_manual()
        f = m.function("bfs_level")
        prefetches = [i for i in f.instructions()
                      if isinstance(i, Prefetch)]
        # qa, xoff, 3 xadj lines, parent (outer) + inner parent.
        assert len(prefetches) == 7


class TestConfigsAndStats:
    def test_all_systems_distinct_and_complete(self):
        from repro.machine import ALL_SYSTEMS
        names = {c.name for c in ALL_SYSTEMS}
        assert len(names) == 4
        for config in ALL_SYSTEMS:
            assert config.caches
            assert config.mshrs >= 1
            assert config.dram_latency > max(
                c.latency for c in config.caches)

    def test_cache_stats_hit_rate(self):
        from repro.machine import Cache
        c = Cache("x", 1024, 2, 64, 1)
        c.insert(1, 0.0)
        assert c.lookup(1) is not None
        assert c.lookup(2) is None
        # lookup() does not itself count demand stats; the memory system
        # attributes hits/misses — confirm the counters are writable.
        c.stats.hits += 1
        c.stats.misses += 1
        assert c.stats.hit_rate == 0.5

    def test_run_result_contains_memory_system(self):
        from repro.machine import HASWELL
        module = build_indirect_kernel(num_buckets=256)
        mem = Memory()
        keys = mem.allocate(8, 50, "keys")
        buckets = mem.allocate(8, 256, "buckets")
        result = Interpreter(module, mem, machine=HASWELL).run(
            "kernel", [keys.base, buckets.base, 50])
        assert result.memory_system is not None
        assert result.memory_system.tlb.stats.accesses > 0


class TestFrontendEdgeCases:
    def test_bare_block_scoping(self):
        from repro.frontend import compile_source
        m = compile_source("""
        long f() {
            long a = 1;
            { long b = 2; a = a + b; }
            { long b = 3; a = a + b; }
            return a;
        }
        """)
        assert Interpreter(m).run("f", []).value == 6

    def test_unary_operators(self):
        from repro.frontend import compile_source
        m = compile_source("""
        long f(long x) { return -x + ~x + !x; }
        """)
        assert Interpreter(m).run("f", [5]).value == -5 + ~5 + 0
        assert Interpreter(m).run("f", [0]).value == 0 + ~0 + 1

    def test_hex_literals(self):
        from repro.frontend import compile_source
        m = compile_source("long f() { return 0xFF & 0x0F; }")
        assert Interpreter(m).run("f", []).value == 0x0F

    def test_while_with_break_like_return(self):
        from repro.frontend import compile_source
        m = compile_source("""
        long find(long* a, long n, long needle) {
            for (long i = 0; i < n; i++)
                if (a[i] == needle) return i;
            return 0 - 1;
        }
        """)
        mem = Memory()
        arr = mem.allocate(8, 4, "a")
        arr.fill([9, 8, 7, 6])
        interp = Interpreter(m, mem)
        assert interp.run("find", [arr.base, 4, 7]).value == 2
        assert interp.run("find", [arr.base, 4, 1]).value == -1
