"""Tests for the composed memory system, core models, and interpreter."""

import pytest

from repro.ir import (FLOAT64, INT32, INT64, IRBuilder, Module, VOID,
                      pointer, verify_module)
from repro.machine import (A53, A57, HASWELL, XEON_PHI, Interpreter,
                           InOrderCore, Memory, MemoryFault, MemorySystem,
                           OutOfOrderCore, make_core, run_multicore,
                           system_by_name)
from repro.machine.configs import CacheConfig, MachineConfig
from tests.conftest import build_indirect_kernel

SIMPLE = MachineConfig(
    name="simple", freq_ghz=1.0, in_order=True, issue_width=1,
    rob_size=0, mshrs=4,
    caches=(CacheConfig(1024, 2, 4),),
    dram_latency=100, dram_cycles_per_line=4.0,
    tlb_entries=16, tlb_walk_latency=20, tlb_max_walks=2,
    tlb_l2_entries=0, page_bits=12)

SIMPLE_OOO = MachineConfig(
    name="simple-ooo", freq_ghz=1.0, in_order=False, issue_width=2,
    rob_size=16, mshrs=4,
    caches=(CacheConfig(1024, 2, 4),),
    dram_latency=100, dram_cycles_per_line=4.0,
    tlb_entries=16, tlb_walk_latency=20, tlb_max_walks=2,
    tlb_l2_entries=0, page_bits=12)


class TestMemorySystem:
    def test_cold_miss_goes_to_dram(self):
        ms = MemorySystem(SIMPLE)
        t = ms.load(pc=1, addr=0x10000, time=0.0)
        assert t >= SIMPLE.dram_latency
        assert ms.stats.demand_misses_to_dram == 1

    def test_second_access_hits_l1(self):
        ms = MemorySystem(SIMPLE)
        t1 = ms.load(1, 0x10000, 0.0)
        t2 = ms.load(1, 0x10000, t1)
        assert t2 - t1 == ms.l1.latency
        assert ms.l1.stats.hits == 1

    def test_software_prefetch_fills_before_demand(self):
        ms = MemorySystem(SIMPLE)
        accept = ms.prefetch(1, 0x10000, 0.0)
        assert accept == 0.0  # core does not wait
        # Demand access long after the fill completed: an L1 hit.
        t = ms.load(1, 0x10000, 1000.0)
        assert t == 1000.0 + ms.l1.latency

    def test_late_prefetch_partial_hiding(self):
        ms = MemorySystem(SIMPLE)
        ms.prefetch(1, 0x10000, 0.0)
        # Demand arrives halfway through the fill: waits the remainder,
        # which is less than a full miss.
        t = ms.load(1, 0x10000, 60.0)
        full_fill = SIMPLE.dram_latency + SIMPLE.tlb_walk_latency
        assert t < 60.0 + full_fill
        assert t >= full_fill
        assert ms.l1.stats.prefetch_hits == 1

    def test_mshr_backpressure_on_prefetch(self):
        ms = MemorySystem(SIMPLE)  # 4 MSHRs
        accepts = [ms.prefetch(1, 0x10000 + i * 4096, 0.0)
                   for i in range(6)]
        assert accepts[0] == 0.0
        assert accepts[-1] > 0.0  # had to wait for a free MSHR

    def test_prefetch_fills_tlb(self):
        ms = MemorySystem(SIMPLE)
        ms.prefetch(1, 0x10000, 0.0)
        walks_after_prefetch = ms.tlb.stats.misses
        ms.load(1, 0x10008, 500.0)
        assert ms.tlb.stats.misses == walks_after_prefetch  # no new walk

    def test_hw_prefetcher_covers_stream(self):
        ms = MemorySystem(SIMPLE)
        t = 0.0
        for i in range(32):
            t = ms.load(7, 0x10000 + i * 64, t)
        assert ms.stats.hw_prefetch_fills > 0

    def test_flush_resets_hierarchy(self):
        ms = MemorySystem(SIMPLE)
        ms.load(1, 0x10000, 0.0)
        ms.flush()
        assert ms.l1.lookup(0x10000 // 64) is None


class TestCores:
    def test_factory_picks_model(self):
        assert isinstance(make_core(SIMPLE, MemorySystem(SIMPLE)),
                          InOrderCore)
        assert isinstance(make_core(SIMPLE_OOO, MemorySystem(SIMPLE_OOO)),
                          OutOfOrderCore)
        with pytest.raises(ValueError):
            InOrderCore(SIMPLE_OOO, MemorySystem(SIMPLE_OOO))
        with pytest.raises(ValueError):
            OutOfOrderCore(SIMPLE, MemorySystem(SIMPLE))

    def test_inorder_blocks_on_miss(self):
        core = InOrderCore(SIMPLE, MemorySystem(SIMPLE))
        core.load(1, 0x10000, 0.0)
        # The pipeline stalled until the miss resolved.
        assert core.time >= SIMPLE.dram_latency

    def test_inorder_does_not_block_on_hit(self):
        ms = MemorySystem(SIMPLE)
        core = InOrderCore(SIMPLE, ms)
        core.load(1, 0x10000, 0.0)
        t_after_miss = core.time
        core.load(2, 0x10000, 0.0)  # L1 hit
        assert core.time - t_after_miss < 2.5

    def test_inorder_prefetch_does_not_block(self):
        core = InOrderCore(SIMPLE, MemorySystem(SIMPLE))
        core.prefetch(1, 0x10000, 0.0)
        assert core.time < 5.0

    def test_ooo_overlaps_independent_misses(self):
        ms = MemorySystem(SIMPLE_OOO)
        core = OutOfOrderCore(SIMPLE_OOO, ms)
        done = [core.load(i, 0x10000 + i * 4096, 0.0) for i in range(3)]
        # Three independent misses complete within ~one latency of each
        # other rather than serially.
        assert max(done) - min(done) < SIMPLE_OOO.dram_latency

    def test_inorder_serialises_independent_misses(self):
        ms = MemorySystem(SIMPLE)
        core = InOrderCore(SIMPLE, ms)
        done = [core.load(i, 0x10000 + i * 4096, 0.0) for i in range(3)]
        assert done[2] - done[0] > 1.5 * SIMPLE.dram_latency

    def test_ooo_window_limits_lookahead(self):
        # With a 16-entry window, the 20th op cannot fetch before the
        # first miss (at the window's head) retires.
        ms = MemorySystem(SIMPLE_OOO)
        core = OutOfOrderCore(SIMPLE_OOO, ms)
        core.load(1, 0x10000, 0.0)  # long miss occupies the window head
        for _ in range(SIMPLE_OOO.rob_size - 1):
            core.op(0.0)
        ready = core.op(0.0)  # window-blocked op
        assert ready > SIMPLE_OOO.dram_latency

    def test_dependent_op_waits(self):
        ms = MemorySystem(SIMPLE_OOO)
        core = OutOfOrderCore(SIMPLE_OOO, ms)
        data = core.load(1, 0x10000, 0.0)
        ready = core.op(data)
        assert ready > data

    def test_instruction_counting(self):
        core = InOrderCore(SIMPLE, MemorySystem(SIMPLE))
        core.op(0.0)
        core.branch(0.0)
        core.store(1, 0x10000, 0.0)
        assert core.instructions == 3


class TestInterpreterSemantics:
    def _exec(self, text, func, args, mem_setup=None):
        from repro.ir import parse_module
        module = parse_module(text)
        mem = Memory()
        handles = mem_setup(mem) if mem_setup else []
        interp = Interpreter(module, mem)
        result = interp.run(func, args(handles) if callable(args) else args)
        return result, handles

    def test_arithmetic_wrapping(self):
        text = """
        func @f(%x: i64) -> i64 {
        entry:
          %y = mul i64 %x, %x
          ret i64 %y
        }
        """
        result, _ = self._exec(text, "f", [2**32])
        assert result.value == 0  # 2^64 wraps to 0

    def test_division_semantics(self):
        text = """
        func @f(%a: i64, %b: i64) -> i64 {
        entry:
          %q = sdiv i64 %a, %b
          ret i64 %q
        }
        """
        result, _ = self._exec(text, "f", [-7, 2])
        assert result.value == -3  # trunc toward zero

    def test_lshr_on_negative(self):
        text = """
        func @f(%a: i64) -> i64 {
        entry:
          %s = lshr i64 %a, 60
          ret i64 %s
        }
        """
        result, _ = self._exec(text, "f", [-1])
        assert result.value == 15

    def test_select_and_cmp(self):
        text = """
        func @max(%a: i64, %b: i64) -> i64 {
        entry:
          %c = cmp sgt i64 %a, %b
          %m = select i64 %c, %a, %b
          ret i64 %m
        }
        """
        assert self._exec(text, "max", [3, 9])[0].value == 9
        assert self._exec(text, "max", [9, 3])[0].value == 9

    def test_loop_and_phi(self):
        text = """
        func @sum(%n: i64) -> i64 {
        entry:
          jmp loop
        loop:
          %i = phi i64 [0, entry], [%i.next, loop]
          %acc = phi i64 [0, entry], [%acc.next, loop]
          %acc.next = add i64 %acc, %i
          %i.next = add i64 %i, 1
          %c = cmp slt i64 %i.next, %n
          br %c, loop, exit
        exit:
          ret i64 %acc.next
        }
        """
        assert self._exec(text, "sum", [10])[0].value == 45

    def test_phi_swap_parallel_copy(self):
        # Classic phi cycle: a,b = b,a each iteration.
        text = """
        func @swap(%n: i64) -> i64 {
        entry:
          jmp loop
        loop:
          %i = phi i64 [0, entry], [%i.next, loop]
          %a = phi i64 [1, entry], [%b, loop]
          %b = phi i64 [2, entry], [%a, loop]
          %i.next = add i64 %i, 1
          %c = cmp slt i64 %i.next, %n
          br %c, loop, exit
        exit:
          ret i64 %a
        }
        """
        # After 3 iterations (odd swaps... n=3: 2 back-edges taken):
        assert self._exec(text, "swap", [3])[0].value == 1

    def test_call_and_return(self):
        text = """
        func @double(%x: i64) -> i64 {
        entry:
          %y = mul i64 %x, 2
          ret i64 %y
        }

        func @main(%x: i64) -> i64 {
        entry:
          %a = call @double(i64 %x)
          %b = call @double(i64 %a)
          ret i64 %b
        }
        """
        assert self._exec(text, "main", [5])[0].value == 20

    def test_alloc_in_ir(self):
        text = """
        func @f() -> i64 {
        entry:
          %buf = alloc i64, 4
          %p = gep i64* %buf, 2
          store i64 77, %p
          %v = load i64* %p
          ret i64 %v
        }
        """
        assert self._exec(text, "f", [])[0].value == 77

    def test_fault_on_wild_load(self):
        text = """
        func @f() -> i64 {
        entry:
          %buf = alloc i64, 4
          %p = gep i64* %buf, 100
          %v = load i64* %p
          ret i64 %v
        }
        """
        with pytest.raises(MemoryFault):
            self._exec(text, "f", [])

    def test_prefetch_never_faults(self):
        text = """
        func @f() -> i64 {
        entry:
          %buf = alloc i64, 4
          %p = gep i64* %buf, 123456
          prefetch i64* %p
          ret i64 0
        }
        """
        result, _ = self._exec(text, "f", [])
        assert result.value == 0
        assert result.stats.prefetches == 1

    def test_float_kernel(self):
        text = """
        func @axpy(%x: f64, %y: f64) -> f64 {
        entry:
          %p = fmul f64 %x, 2.0
          %s = fadd f64 %p, %y
          ret f64 %s
        }
        """
        assert self._exec(text, "axpy", [1.5, 1.0])[0].value == 4.0

    def test_argument_count_checked(self):
        text = "func @f(%x: i64) -> i64 {\nentry:\n  ret i64 %x\n}"
        from repro.ir import parse_module
        interp = Interpreter(parse_module(text))
        with pytest.raises(TypeError):
            interp.run("f", [])

    def test_max_steps_guard(self):
        text = """
        func @forever() -> void {
        entry:
          jmp entry.loop
        entry.loop:
          jmp entry.loop
        }
        """
        from repro.ir import parse_module
        interp = Interpreter(parse_module(text))
        interp.max_steps = 1000
        with pytest.raises(RuntimeError, match="max_steps"):
            interp.run("forever", [])

    def test_stats_counters(self, indirect_module):
        mem = Memory()
        keys = mem.allocate(8, 10, "keys")
        keys.fill([0] * 10)
        buckets = mem.allocate(8, 16, "buckets")
        interp = Interpreter(indirect_module, mem)
        result = interp.run("kernel", [keys.base, buckets.base, 10])
        assert result.stats.loads == 20
        assert result.stats.stores == 10
        assert result.stats.branches == 11
        assert buckets.data[0] == 10


class TestTimedExecution:
    def test_cycles_positive_and_repeatable(self, indirect_module):
        def run():
            mem = Memory()
            keys = mem.allocate(8, 100, "keys")
            keys.fill(list(range(100)))
            buckets = mem.allocate(8, 128, "buckets")
            interp = Interpreter(indirect_module, mem, machine=HASWELL)
            return interp.run("kernel",
                              [keys.base, buckets.base, 100]).cycles
        c1, c2 = run(), run()
        assert c1 > 0
        assert c1 == c2  # deterministic

    def test_inorder_slower_than_ooo_on_misses(self):
        import numpy as np
        rng = np.random.default_rng(0)

        def run(machine):
            module = build_indirect_kernel(num_buckets=1 << 18)
            mem = Memory()
            keys = mem.allocate(8, 2000, "keys")
            keys.fill(rng.integers(0, 1 << 18, 2000))
            buckets = mem.allocate(8, 1 << 18, "buckets")
            interp = Interpreter(module, mem, machine=machine)
            return interp.run("kernel",
                              [keys.base, buckets.base, 2000]).cycles
        assert run(A53) > run(HASWELL)

    def test_system_lookup(self):
        assert system_by_name("haswell") is HASWELL
        assert system_by_name("A53") is A53
        with pytest.raises(KeyError):
            system_by_name("m1")

    def test_huge_page_config(self):
        hp = A53.with_huge_pages()
        assert hp.page_bits == 21
        assert A53.page_bits == 12  # original untouched
        assert hp.with_small_pages().page_bits == 12


class TestMulticore:
    def test_shared_dram_slows_cores(self):
        import numpy as np
        rng = np.random.default_rng(0)

        def setup(n_cores):
            modules, memories, args = [], [], []
            for _ in range(n_cores):
                module = build_indirect_kernel(num_buckets=1 << 16)
                mem = Memory()
                keys = mem.allocate(8, 1500, "keys")
                keys.fill(rng.integers(0, 1 << 16, 1500))
                buckets = mem.allocate(8, 1 << 16, "buckets")
                modules.append(module)
                memories.append(mem)
                args.append([keys.base, buckets.base, 1500])
            return modules, memories, args

        m1, mem1, a1 = setup(1)
        single = run_multicore(m1, "kernel", a1, HASWELL, mem1)
        m4, mem4, a4 = setup(4)
        quad = run_multicore(m4, "kernel", a4, HASWELL, mem4)
        assert len(quad.per_core) == 4
        # Four cores sharing a channel take longer per task than one.
        assert quad.makespan > single.makespan
