"""Tests for induction variables, allocation sizes, aliasing, purity."""

import pytest

from repro.analysis import (InductionAnalysis, LoopInfo,
                            SideEffectAnalysis, known_array_bound,
                            loop_may_clobber, may_alias, static_array_bound,
                            stores_in_loop, transitive_inputs,
                            underlying_object)
from repro.ir import (Constant, INT64, IRBuilder, Load, Module, VOID,
                      pointer, verify_module)
from tests.conftest import build_indirect_kernel


def build_counted_loop(start=0, step=1, predicate="slt", cmp_on_next=True,
                       step_op="add"):
    """A parametrised counted loop for induction-variable testing."""
    m = Module("m")
    f = m.create_function("f", VOID, [("n", INT64)])
    b = IRBuilder()
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    exit_ = f.add_block("exit")
    b.set_insert_point(entry)
    b.jmp(loop)
    b.set_insert_point(loop)
    i = b.phi(INT64, "i")
    i_next = b.binop(step_op, i, b.const(step), "i.next")
    subject = i_next if cmp_on_next else i
    c = b.cmp(predicate, subject, f.arg("n"), "c")
    b.br(c, loop, exit_)
    i.add_incoming(b.const(start), entry)
    i.add_incoming(i_next, loop)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(m)
    return f, i


class TestInductionDetection:
    def test_canonical_iv(self):
        f, phi = build_counted_loop()
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv is not None
        assert iv.step == 1
        assert iv.is_canonical
        assert iv.is_increasing

    def test_nonzero_start_not_canonical(self):
        f, phi = build_counted_loop(start=5)
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv is not None and not iv.is_canonical

    def test_step_two(self):
        f, phi = build_counted_loop(step=2)
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv.step == 2 and not iv.is_canonical

    def test_decreasing_via_sub(self):
        f, phi = build_counted_loop(start=100, step=1, predicate="sgt",
                                    step_op="sub")
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv is not None
        assert iv.step == -1
        assert not iv.is_increasing

    def test_non_constant_step_rejected(self):
        m = Module("m")
        f = m.create_function("f", VOID, [("n", INT64), ("s", INT64)])
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        b.jmp(loop)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        i_next = b.add(i, f.arg("s"), "i.next")  # variable step
        c = b.cmp("slt", i_next, f.arg("n"), "c")
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        b.set_insert_point(exit_)
        b.ret()
        assert InductionAnalysis(f).iv_for(i) is None

    def test_accumulator_phi_not_an_iv(self):
        # i = phi; acc = phi [0], [acc + i] -- acc's step is not constant.
        m = Module("m")
        f = m.create_function("f", INT64, [("n", INT64)])
        b = IRBuilder()
        entry, loop, exit_ = (f.add_block(x) for x in
                              ("entry", "loop", "exit"))
        b.set_insert_point(entry)
        b.jmp(loop)
        b.set_insert_point(loop)
        i = b.phi(INT64, "i")
        acc = b.phi(INT64, "acc")
        acc_next = b.add(acc, i, "acc.next")
        i_next = b.add(i, b.const(1), "i.next")
        c = b.cmp("slt", i_next, f.arg("n"), "c")
        b.br(c, loop, exit_)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, loop)
        acc.add_incoming(b.const(0), entry)
        acc.add_incoming(acc_next, loop)
        b.set_insert_point(exit_)
        b.ret(acc_next)
        analysis = InductionAnalysis(f)
        assert analysis.iv_for(i) is not None
        assert analysis.iv_for(acc) is None
        assert analysis.is_induction_phi(i)
        assert not analysis.is_induction_phi(acc)


class TestBoundDerivation:
    def test_exclusive_bound_on_update(self):
        f, phi = build_counted_loop(predicate="slt", cmp_on_next=True)
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv.bound is not None
        assert not iv.bound.inclusive
        assert iv.bound.value.name == "n"

    def test_exclusive_bound_on_phi(self):
        f, phi = build_counted_loop(predicate="slt", cmp_on_next=False)
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv.bound is not None and not iv.bound.inclusive

    def test_inclusive_bound(self):
        f, phi = build_counted_loop(predicate="sle")
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv.bound is not None and iv.bound.inclusive

    def test_ne_bound_exclusive(self):
        f, phi = build_counted_loop(predicate="ne")
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv.bound is not None and not iv.bound.inclusive

    def test_decreasing_bound(self):
        f, phi = build_counted_loop(start=100, predicate="sgt",
                                    step_op="sub")
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv.bound is not None and not iv.bound.inclusive

    def test_wrong_direction_predicate_gives_no_bound(self):
        # Increasing IV with a 'sgt' continue-condition is nonsense; the
        # analysis must not derive a bound from it.
        f, phi = build_counted_loop(predicate="sgt")
        iv = InductionAnalysis(f).iv_for(phi)
        assert iv.bound is None

    def test_kernel_iv_bound(self, indirect_module):
        f = indirect_module.function("kernel")
        analysis = InductionAnalysis(f)
        (iv,) = analysis.all
        assert iv.bound is not None
        assert iv.bound.value.name == "n"
        assert not iv.bound.inclusive


class TestUnderlyingObjectAndBounds:
    def test_gep_chain(self, indirect_module):
        f = indirect_module.function("kernel")
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        keys_load, bucket_load = loads
        assert underlying_object(keys_load.ptr) is f.arg("keys")
        assert underlying_object(bucket_load.ptr) is f.arg("buckets")

    def test_alloc_bound(self):
        m = Module("m")
        f = m.create_function("f", VOID)
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        alloc = b.alloc(INT64, 128, "arr")
        gep = b.gep(alloc, 5)
        b.ret()
        bound = known_array_bound(gep)
        assert bound is not None and bound.source == "alloc"
        assert static_array_bound(gep) == 128

    def test_argument_annotation_bound(self, indirect_module):
        f = indirect_module.function("kernel")
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        bound = known_array_bound(loads[0].ptr)
        assert bound is not None and bound.source == "argument"
        assert bound.count is f.arg("n")

    def test_unannotated_argument_has_no_bound(self):
        m = build_indirect_kernel(annotate_sizes=False)
        f = m.function("kernel")
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert known_array_bound(loads[0].ptr) is None

    def test_constant_annotation(self):
        m = build_indirect_kernel(num_buckets=512)
        f = m.function("kernel")
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert static_array_bound(loads[1].ptr) == 512


class TestAliasing:
    def test_same_object_aliases(self, indirect_module):
        f = indirect_module.function("kernel")
        keys = f.arg("keys")
        assert may_alias(keys, keys)

    def test_distinct_allocs_do_not_alias(self):
        m = Module("m")
        f = m.create_function("f", VOID)
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        a1 = b.alloc(INT64, 8)
        a2 = b.alloc(INT64, 8)
        b.ret()
        assert not may_alias(a1, a2)

    def test_plain_arguments_alias(self):
        m = build_indirect_kernel(noalias=False)
        f = m.function("kernel")
        assert may_alias(f.arg("keys"), f.arg("buckets"))

    def test_noalias_arguments_do_not_alias(self, indirect_module):
        f = indirect_module.function("kernel")
        assert not may_alias(f.arg("keys"), f.arg("buckets"))

    def test_clobber_detection(self):
        m = build_indirect_kernel(noalias=False)
        f = m.function("kernel")
        info = LoopInfo(f)
        loop = info.loops[0]
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert len(stores_in_loop(loop)) == 1
        # Without noalias the store to buckets may clobber the keys load.
        assert loop_may_clobber(loop, loads[0])

    def test_no_clobber_with_noalias(self, indirect_module):
        f = indirect_module.function("kernel")
        loop = LoopInfo(f).loops[0]
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert not loop_may_clobber(loop, loads[0])


class TestTransitiveInputs:
    def test_closure_contents(self, indirect_module):
        f = indirect_module.function("kernel")
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        closure = transitive_inputs(loads[1])
        opcodes = sorted(i.opcode for i in closure)
        assert "load" in opcodes and "gep" in opcodes and "phi" in opcodes

    def test_cycle_through_phi_terminates(self, indirect_module):
        f = indirect_module.function("kernel")
        phi = f.block("loop").phis[0]
        closure = transitive_inputs(phi)
        assert any(i.opcode == "add" for i in closure)


class TestSideEffects:
    def test_pure_leaf_function(self):
        m = Module("m")
        f = m.create_function("leaf", INT64, [("x", INT64)])
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        b.ret(b.add(f.arg("x"), b.const(1)))
        assert SideEffectAnalysis(m).is_pure(f)

    def test_store_makes_impure(self, indirect_module):
        analysis = SideEffectAnalysis(indirect_module)
        assert not analysis.is_pure(indirect_module.function("kernel"))

    def test_impurity_propagates_through_calls(self):
        m = build_indirect_kernel()
        impure = m.function("kernel")
        caller = m.create_function("caller", VOID,
                                   [("p", pointer(INT64)),
                                    ("q", pointer(INT64)), ("n", INT64)])
        b = IRBuilder()
        b.set_insert_point(caller.add_block("entry"))
        b.call(impure, [caller.arg("p"), caller.arg("q"),
                        caller.arg("n")])
        b.ret()
        analysis = SideEffectAnalysis(m)
        assert not analysis.is_pure(caller)

    def test_trusted_pure_annotation(self):
        m = Module("m")
        f = m.create_function("blessed", VOID, pure=True)
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        b.alloc(INT64, 4)  # would normally be an effect
        b.ret()
        assert SideEffectAnalysis(m).is_pure(f)
