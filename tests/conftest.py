"""Shared test fixtures: small hand-built kernels used across suites."""

from __future__ import annotations

import pytest

from repro.ir import (INT64, IRBuilder, Module, VOID, pointer,
                      verify_module)
from repro.ir.values import Constant


def build_indirect_kernel(num_buckets: int | None = 1024,
                          annotate_sizes: bool = True,
                          noalias: bool = True) -> Module:
    """The canonical stride-indirect kernel ``buckets[keys[i]]++``.

    :param num_buckets: when given, arguments carry Constant array-size
        annotations (NAS-style static arrays); otherwise sizes are
        unknown and the pass must use the loop bound.
    """
    module = Module("indirect")
    func = module.create_function(
        "kernel", VOID,
        [("keys", pointer(INT64)), ("buckets", pointer(INT64)),
         ("n", INT64)])
    keys, buckets, n = func.args
    if annotate_sizes and num_buckets is not None:
        keys.array_size = func.arg("n")
        buckets.array_size = Constant(INT64, num_buckets)
    keys.noalias = noalias
    buckets.noalias = noalias

    b = IRBuilder()
    entry = func.add_block("entry")
    loop = func.add_block("loop")
    exit_ = func.add_block("exit")
    b.set_insert_point(entry)
    guard = b.cmp("sgt", n, b.const(0), "guard")
    b.br(guard, loop, exit_)
    b.set_insert_point(loop)
    i = b.phi(INT64, "i")
    p = b.gep(keys, i, "p")
    k = b.load(p, "k")
    bp = b.gep(buckets, k, "bp")
    bv = b.load(bp, "bv")
    inc = b.add(bv, b.const(1), "inc")
    b.store(inc, bp)
    i_next = b.add(i, b.const(1), "i.next")
    cond = b.cmp("slt", i_next, n, "cond")
    b.br(cond, loop, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, loop)
    b.set_insert_point(exit_)
    b.ret()
    verify_module(module)
    return module


def build_diamond_function() -> Module:
    """A function with an if/else diamond (no loops)."""
    module = Module("diamond")
    func = module.create_function("f", INT64, [("x", INT64)])
    b = IRBuilder()
    entry = func.add_block("entry")
    then = func.add_block("then")
    other = func.add_block("other")
    merge = func.add_block("merge")
    b.set_insert_point(entry)
    cond = b.cmp("sgt", func.arg("x"), b.const(0), "c")
    b.br(cond, then, other)
    b.set_insert_point(then)
    doubled = b.mul(func.arg("x"), b.const(2), "doubled")
    b.jmp(merge)
    b.set_insert_point(other)
    negated = b.sub(b.const(0), func.arg("x"), "negated")
    b.jmp(merge)
    b.set_insert_point(merge)
    result = b.phi(INT64, "result")
    result.add_incoming(doubled, then)
    result.add_incoming(negated, other)
    b.ret(result)
    verify_module(module)
    return module


@pytest.fixture
def indirect_module() -> Module:
    """Fresh stride-indirect kernel with annotated sizes."""
    return build_indirect_kernel()


@pytest.fixture
def diamond_module() -> Module:
    """Fresh diamond-CFG function."""
    return build_diamond_function()
