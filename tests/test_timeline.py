"""Flight-recorder tests: windowed timelines, spans, Perfetto export.

The load-bearing property is **tier identity**: attaching a
:class:`TimelineRecorder` must not move a single simulated cycle or
telemetry aggregate under any execution tier (reference, fused fast
path, trace JIT) on any machine — sampling happens only at the
reference yield boundaries all tiers share.  The rest asserts the
window bookkeeping, the env-var clamp contract, span recording, and
the determinism of the Chrome trace-event export.
"""

from __future__ import annotations

import dataclasses
import io
import json
from types import SimpleNamespace

import pytest

from repro.machine import A53, HASWELL, Interpreter
from repro.machine.memory import Memory
from repro.telemetry.perfetto import (PIPELINE_PID, SIM_PID,
                                      build_trace, canonical_json)
from repro.telemetry.spans import (SpanRecorder, active_recorder,
                                   instant, recording, span)
from repro.telemetry.timeline import (DEFAULT_WINDOW_CYCLES,
                                      MIN_WINDOW_CYCLES,
                                      TimelineRecorder,
                                      resolve_timeline,
                                      timeline_enabled, timeline_window)

#: Execution tiers (fastpath, tracejit, vector) — as in
#: tests/test_fastpath_equivalence.py.
TIERS = ((False, False, False), (True, False, False),
         (True, True, False), (True, True, True))


def snapshot(interp: Interpreter) -> dict:
    """Every observable counter of a finished run."""
    return {
        "cycles": interp.core.cycles,
        "core_instructions": interp.core.instructions,
        "run_stats": dataclasses.asdict(interp.stats),
        "memory_system": interp.memory_system.snapshot(),
    }


# ---------------------------------------------------------------------
# Unit tests against fake cores/hierarchies (pure window math).
# ---------------------------------------------------------------------

def _fake_machine(cycles=0.0, instructions=0, hits=0, misses=0,
                  tlb=0, dram=0, swpf=0, occupancy=0):
    core = SimpleNamespace(cycles=cycles, time=cycles,
                           instructions=instructions, issue_cost=0.25)
    cache = SimpleNamespace(
        name="L1", stats=SimpleNamespace(hits=hits, misses=misses))
    ms = SimpleNamespace(
        tlb=SimpleNamespace(stats=SimpleNamespace(misses=tlb)),
        dram=SimpleNamespace(stats=SimpleNamespace(accesses=dram)),
        stats=SimpleNamespace(sw_prefetches=swpf),
        caches=[cache],
        mshr_occupancy=lambda time: occupancy)
    return core, ms


class TestTimelineRecorderUnit:
    def test_windows_close_at_cycle_edges(self):
        rec = TimelineRecorder(window=1000)
        core, ms = _fake_machine(cycles=400.0, instructions=100)
        rec.sample(core, ms)
        assert rec.windows == []          # edge not reached yet
        core, ms = _fake_machine(cycles=1500.0, instructions=400,
                                 misses=7)
        rec.sample(core, ms)
        assert len(rec.windows) == 1
        (w,) = rec.windows
        assert w["start_cycle"] == 0.0
        assert w["end_cycle"] == 1500.0   # first boundary past the edge
        assert w["instructions"] == 400
        assert w["issue_cycles"] == 100.0  # 400 × 0.25
        assert w["stall_cycles"] == 1400.0
        assert w["levels"]["L1"]["misses"] == 7
        assert w["levels"]["L1"]["mpki"] == pytest.approx(17.5)

    def test_long_stall_spans_several_edges_in_one_window(self):
        rec = TimelineRecorder(window=1000)
        core, ms = _fake_machine(cycles=5500.0, instructions=10)
        rec.sample(core, ms)
        assert len(rec.windows) == 1      # one window, not five
        core, ms = _fake_machine(cycles=5800.0, instructions=20)
        rec.sample(core, ms)
        assert len(rec.windows) == 1      # next edge is 6000
        core, ms = _fake_machine(cycles=6100.0, instructions=30)
        rec.sample(core, ms)
        assert len(rec.windows) == 2
        assert rec.windows[1]["start_cycle"] == 5500.0
        assert rec.windows[1]["end_cycle"] == 6100.0

    def test_mshr_high_water_resets_per_window(self):
        rec = TimelineRecorder(window=1000)
        core, ms = _fake_machine(cycles=200.0, occupancy=9)
        rec.sample(core, ms)
        core, ms = _fake_machine(cycles=1200.0, instructions=5,
                                 occupancy=2)
        rec.sample(core, ms)
        assert rec.windows[0]["mshr_high_water"] == 9
        core, ms = _fake_machine(cycles=2400.0, instructions=9,
                                 occupancy=3)
        rec.sample(core, ms)
        assert rec.windows[1]["mshr_high_water"] == 3

    def test_finalize_closes_trailing_partial_window(self):
        rec = TimelineRecorder(window=1000)
        core, ms = _fake_machine(cycles=300.0, instructions=40)
        rec.finalize(core, ms)
        assert len(rec.windows) == 1
        rec.finalize(core, ms)            # idempotent
        assert len(rec.windows) == 1

    def test_finalize_on_empty_run_records_nothing(self):
        rec = TimelineRecorder(window=1000)
        core, ms = _fake_machine()
        rec.finalize(core, ms)
        assert rec.windows == []
        snap = rec.snapshot()
        assert snap["schema"] == "repro-timeline-v1"
        assert snap["totals"] == {"windows": 0, "cycles": 0.0,
                                  "instructions": 0}

    def test_outcome_bins_are_per_window_deltas(self):
        rec = TimelineRecorder(window=1000)
        tel = SimpleNamespace(outcome_counts={"timely": 5, "late": 1})
        core, ms = _fake_machine(cycles=1100.0, instructions=10)
        rec.sample(core, ms, tel)
        tel2 = SimpleNamespace(outcome_counts={"timely": 9, "late": 4})
        core, ms = _fake_machine(cycles=2200.0, instructions=20)
        rec.sample(core, ms, tel2)
        assert rec.windows[0]["outcomes"] == {"timely": 5, "late": 1}
        assert rec.windows[1]["outcomes"] == {"timely": 4, "late": 3}

    def test_invalid_window_argument_raises(self):
        with pytest.raises(ValueError):
            TimelineRecorder(window=-5)


class TestTimelineEnvGates:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TIMELINE", raising=False)
        assert timeline_enabled(None) is False
        assert resolve_timeline(None) is None

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIMELINE", "1")
        assert timeline_enabled(None) is True
        assert isinstance(resolve_timeline(None), TimelineRecorder)

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIMELINE", "1")
        assert timeline_enabled(False) is False
        assert resolve_timeline(False) is None

    def test_recorder_passes_through(self):
        rec = TimelineRecorder(window=2000)
        assert resolve_timeline(rec) is rec

    def test_window_env_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIMELINE_WINDOW", "25000")
        assert timeline_window() == 25000

    @pytest.mark.parametrize("raw,used,reason", [
        ("bogus", DEFAULT_WINDOW_CYCLES, "not an integer"),
        ("-3", DEFAULT_WINDOW_CYCLES, "not positive"),
        ("10", MIN_WINDOW_CYCLES, "below the minimum"),
    ])
    def test_bad_window_warns_and_falls_back(self, monkeypatch, raw,
                                             used, reason):
        from repro.remarks import RemarkEmitter, collecting
        monkeypatch.setenv("REPRO_SIM_TIMELINE_WINDOW", raw)
        emitter = RemarkEmitter()
        with collecting(emitter):
            with pytest.warns(RuntimeWarning, match=reason):
                assert timeline_window() == used
        (remark,) = [r for r in emitter
                     if r.name == "TimelineWindowClamped"]
        args = dict(remark.args)
        assert args["used"] == used
        assert args["reason"] == reason


# ---------------------------------------------------------------------
# The tier-identity matrix (acceptance criterion).
# ---------------------------------------------------------------------

class TestTimelineTierIdentity:
    """Simulated cycles and telemetry aggregates must be bit-identical
    with timeline sampling on vs off, across every execution tier on
    at least two machines."""

    @pytest.mark.parametrize("machine", (HASWELL, A53),
                             ids=lambda m: m.name)
    @pytest.mark.parametrize("variant", ("plain", "auto"))
    def test_matrix_integer_sort(self, machine, variant):
        from repro.workloads import IntegerSort
        snaps = {}
        telemetries = {}
        for fastpath, tracejit, vector in TIERS:
            for timeline in (False, True):
                wl = IntegerSort(num_keys=2000, num_buckets=1 << 14)
                module = wl.build_variant(variant)
                mem = Memory(machine.line_size)
                prepared = wl.prepare(mem)
                # Explicit False (not None) so an ambient
                # REPRO_SIM_TIMELINE=1 cannot turn the "off" runs on.
                recorder = (TimelineRecorder(window=2000)
                            if timeline else False)
                interp = Interpreter(module, mem, machine=machine,
                                     fastpath=fastpath,
                                     tracejit=tracejit,
                                     vector=vector,
                                     telemetry=True,
                                     timeline=recorder)
                result = interp.run(wl.entry, prepared.args)
                prepared.validate()
                if timeline:
                    assert result.timeline is not None
                    assert result.timeline["windows"]
                else:
                    assert result.timeline is None
                key = (fastpath, tracejit, vector, timeline)
                snaps[key] = snapshot(interp)
                telemetries[key] = result.telemetry
        base = snaps[(False, False, False, False)]
        base_tel = telemetries[(False, False, False, False)]
        # The "vector" telemetry section attributes classification to
        # the batch tier and is (by design) the one tier-dependent part
        # of the snapshot; everything else must match bit-for-bit.
        base_cmp = {k: v for k, v in base_tel.items() if k != "vector"}
        for combo, snap in snaps.items():
            assert snap == base, f"counters diverged at {combo}"
            tel = telemetries[combo]
            cmp = {k: v for k, v in tel.items() if k != "vector"}
            assert cmp == base_cmp, (
                f"telemetry diverged at {combo}")
            if not combo[2]:
                assert tel["vector"]["per_pc"] == {}, (
                    f"vector attribution outside the vector tier "
                    f"at {combo}")

    @pytest.mark.parametrize("machine", (HASWELL, A53),
                             ids=lambda m: m.name)
    def test_windows_tile_the_run_exactly(self, machine):
        from repro.workloads import IntegerSort
        wl = IntegerSort(num_keys=2000, num_buckets=1 << 14)
        module = wl.build_variant("auto")
        mem = Memory(machine.line_size)
        prepared = wl.prepare(mem)
        interp = Interpreter(module, mem, machine=machine,
                             telemetry=True,
                             timeline=TimelineRecorder(window=2000))
        result = interp.run(wl.entry, prepared.args)
        windows = result.timeline["windows"]
        assert windows[0]["start_cycle"] == 0.0
        for prev, cur in zip(windows, windows[1:]):
            assert cur["start_cycle"] == prev["end_cycle"]
        assert windows[-1]["end_cycle"] == interp.core.cycles
        assert sum(w["instructions"] for w in windows) == \
            interp.core.instructions
        # With a collector attached, outcome bins are per-window and
        # sum to the aggregate counts.
        summed: dict = {}
        for w in windows:
            for outcome, n in (w["outcomes"] or {}).items():
                summed[outcome] = summed.get(outcome, 0) + n
        aggregate = result.telemetry["prefetch"]["outcomes"]
        for outcome, n in summed.items():
            assert aggregate[outcome] == n

    def test_sampling_interval_does_not_change_cycles(self):
        from repro.workloads import IntegerSort
        cycles = set()
        for sample_every in (500, 10_000):
            wl = IntegerSort(num_keys=2000, num_buckets=1 << 14)
            module = wl.build_variant("auto")
            mem = Memory(HASWELL.line_size)
            prepared = wl.prepare(mem)
            rec = TimelineRecorder(window=2000,
                                   sample_every=sample_every)
            interp = Interpreter(module, mem, machine=HASWELL,
                                 timeline=rec)
            interp.run(wl.entry, prepared.args)
            cycles.add(interp.core.cycles)
        assert len(cycles) == 1


# ---------------------------------------------------------------------
# Spans.
# ---------------------------------------------------------------------

class TestSpans:
    def test_no_recorder_is_a_noop(self):
        assert active_recorder() is None
        with span("bench", "x", a=1) as extra:
            extra["b"] = 2            # accepted, goes nowhere
        instant("bench", "y")         # no crash

    def test_span_records_with_merged_args(self):
        rec = SpanRecorder()
        with recording(rec):
            assert active_recorder() is rec
            with span("cache", "probe", key="abc") as s:
                s["hit"] = True
            instant("tracejit", "TraceCompiled", ops=7)
        assert active_recorder() is None
        (sp,) = rec.spans()
        assert sp["category"] == "cache"
        assert sp["name"] == "probe"
        assert sp["args"] == {"key": "abc", "hit": True}
        assert sp["dur_us"] >= 0
        (inst,) = [r for r in rec.records if r["type"] == "instant"]
        assert inst["name"] == "TraceCompiled"
        assert inst["args"] == {"ops": 7}

    def test_nested_spans_record_in_completion_order(self):
        rec = SpanRecorder()
        with recording(rec):
            with span("bench", "outer"):
                with span("bench", "inner"):
                    pass
        names = [r["name"] for r in rec.spans()]
        assert names == ["inner", "outer"]

    def test_pass_manager_records_pass_spans(self):
        from repro.frontend import compile_source
        from repro.passes import DeadCodeEliminationPass, PassManager
        src = ("void f(long* restrict a, long n) {"
               " for (long i = 0; i < n; i++) a[i] = i; }")
        rec = SpanRecorder()
        with recording(rec):
            module = compile_source(src)
            pm = PassManager().add(DeadCodeEliminationPass())
            pm.run(module)
        assert [s["name"] for s in rec.spans("frontend")] \
            == ["compile_source"]
        (pass_span,) = rec.spans("pass")
        assert pass_span["name"] == DeadCodeEliminationPass().name
        assert pass_span["args"]["insts_before"] >= \
            pass_span["args"]["insts_after"]

    def test_run_variant_emits_bench_and_cache_spans(self, tmp_path):
        from repro.bench.cache import RunCache
        from repro.bench.runner import run_variant
        from repro.workloads import IntegerSort
        cache = RunCache(tmp_path / "cache")
        rec = SpanRecorder()
        with recording(rec):
            wl = IntegerSort(num_keys=500, num_buckets=1 << 10)
            run_variant(wl, "plain", HASWELL, cache=cache)
        names = [s["name"] for s in rec.spans("bench")]
        for expected in ("build", "prepare", "simulate", "validate",
                         "run_variant"):
            assert expected in names
        job = [s for s in rec.spans("bench")
               if s["name"] == "run_variant"][0]
        assert job["args"]["cached"] is False
        probe = [s for s in rec.spans("cache")
                 if s["name"] == "probe"][0]
        assert probe["args"]["hit"] is False
        assert [s["name"] for s in rec.spans("cache")].count("store") \
            == 1


# ---------------------------------------------------------------------
# Cache interaction.
# ---------------------------------------------------------------------

class TestTimelineCacheInteraction:
    def test_run_key_separates_timeline_on_off(self):
        from repro.bench.cache import run_key
        from repro.workloads import IntegerSort
        wl = IntegerSort(num_keys=500, num_buckets=1 << 10)
        base = run_key("ir", HASWELL, wl, True)
        assert run_key("ir", HASWELL, wl, True, timeline=True) != base
        assert run_key("ir", HASWELL, wl, True, timeline=False) == base

    def test_timeline_snapshot_rides_the_disk_cache(self, tmp_path):
        from repro.bench.cache import RunCache
        from repro.bench.runner import run_variant
        from repro.workloads import IntegerSort

        def run(cache):
            wl = IntegerSort(num_keys=500, num_buckets=1 << 10)
            return run_variant(wl, "auto", HASWELL, cache=cache,
                               timeline=TimelineRecorder(window=2000))

        cache = RunCache(tmp_path / "cache")
        first = run(cache)
        assert cache.stores == 1
        second = run(RunCache(tmp_path / "cache"))  # cold memory layer
        assert second.timeline == first.timeline
        assert second.timeline["windows"]


# ---------------------------------------------------------------------
# Perfetto export + CLI.
# ---------------------------------------------------------------------

def run_cli(*argv):
    from repro.cli import main
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestPerfettoExport:
    def _rows(self):
        from repro.telemetry.report import timeline_rows
        from repro.workloads import IntegerSort
        wl = IntegerSort(num_keys=500, num_buckets=1 << 10)
        return timeline_rows([wl], HASWELL, window=2000, cache=False)

    def test_trace_structure(self):
        rec = SpanRecorder()
        with recording(rec):
            rows = self._rows()
        trace = build_trace(rows, rec, meta={"machine": "Haswell"})
        assert trace["otherData"]["schema"] == "repro-timeline-trace-v1"
        assert trace["otherData"]["machine"] == "Haswell"
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {SIM_PID, PIPELINE_PID}
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and all(e["pid"] == SIM_PID for e in counters)
        metric_names = {e["name"] for e in counters}
        assert any("IPC" in n for n in metric_names)
        assert any("MPKI" in n for n in metric_names)
        pipeline_spans = [e for e in events if e["ph"] == "X"
                          and e["pid"] == PIPELINE_PID]
        assert pipeline_spans

    def test_canonical_json_zeroes_only_wall_clock(self):
        rec = SpanRecorder()
        with recording(rec):
            rows = self._rows()
        trace = build_trace(rows, rec)
        canon = json.loads(canonical_json(trace))
        for event in canon["traceEvents"]:
            if event["pid"] == PIPELINE_PID:
                assert event.get("ts", 0) == 0
                assert event.get("dur", 0) == 0
        sim_ts = [e["ts"] for e in canon["traceEvents"]
                  if e["pid"] == SIM_PID and "ts" in e]
        assert any(ts > 0 for ts in sim_ts)  # simulated time survives
        # Canonicalization must not mutate the input document.
        assert any(e.get("ts") for e in trace["traceEvents"]
                   if e["pid"] == PIPELINE_PID)

    def test_two_cli_runs_are_byte_identical_canonically(self,
                                                         tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            code, _ = run_cli("timeline", "is", "--small", "--window",
                              "5000", "--perfetto", str(path))
            assert code == 0
        traces = [json.loads(p.read_text()) for p in paths]
        assert canonical_json(traces[0]) == canonical_json(traces[1])


class TestTimelineCli:
    def test_phase_table_output(self):
        code, out = run_cli("timeline", "is", "--small", "--window",
                            "5000")
        assert code == 0
        for column in ("Win", "IPC", "L1 MPKI", "TLB", "MSHR",
                       "Timely", "Late"):
            assert column in out
        assert "IS on Haswell" in out

    def test_json_report_schema(self):
        code, out = run_cli("timeline", "ra", "--small", "--json")
        assert code == 0
        report = json.loads(out)
        assert report["schema"] == "repro-timeline-report-v1"
        (row,) = report["rows"]
        assert row["workload"] == "RA"
        assert row["timeline"]["schema"] == "repro-timeline-v1"

    def test_fig4_target_pins_machine(self):
        code, out = run_cli("timeline", "fig4c", "--small", "--window",
                            "20000")
        assert code == 0
        assert "on A53" in out

    def test_invalid_window_exits_2(self, capsys):
        code, _ = run_cli("timeline", "is", "--window", "-5")
        assert code == 2
        assert "--window must be positive" in capsys.readouterr().err
