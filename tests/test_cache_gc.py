"""Tests for the content-addressed store's GC and the ``repro cache
gc`` CLI, plus the concurrent-writer hardening of the shared disk
layer (two-process race test)."""

from __future__ import annotations

import io
import json
import multiprocessing
import os
import time

from repro.bench.cache import RunCache
from repro.cli import main
from repro.serve.cas import ContentStore, store_key


def fill(store: ContentStore, n: int, payload_bytes: int = 200):
    """Store n entries with strictly increasing mtimes; returns keys."""
    keys = []
    for i in range(n):
        key = store_key({"entry": i})
        store.put(key, {"i": i, "pad": "x" * payload_bytes})
        mtime = time.time() - (n - i) * 10
        os.utime(store._path(key), (mtime, mtime))
        keys.append(key)
    return keys


class TestStoreKey:
    def test_order_insensitive(self):
        assert store_key({"a": 1, "b": 2}) == store_key({"b": 2, "a": 1})
        assert store_key({"a": 1}) != store_key({"a": 2})


class TestKeyValidation:
    """Only full sha256 hexdigests may ever reach the filesystem —
    anything else (``..``, ``/``, uppercase, wrong length) would be a
    path-traversal vector when keys arrive from a URL."""

    GOOD = store_key({"x": 1})
    BAD = ["", "abc", GOOD[:-1], GOOD + "0", GOOD.upper(),
           "aa/../../../../etc/passwd", "../" + GOOD, GOOD[:-2] + "/x",
           "aa/" + GOOD[3:], GOOD[:-1] + "\x00"]

    def test_valid_key(self):
        from repro.serve.cas import valid_key
        assert valid_key(self.GOOD)
        for key in self.BAD:
            assert not valid_key(key), key

    def test_path_refuses_bad_keys(self, tmp_path):
        import pytest
        store = ContentStore(tmp_path)
        for key in self.BAD:
            with pytest.raises(ValueError):
                store._path(key)
            assert store.get(key) is None      # miss, not a crash
            assert store.contains(key) is False

    def test_traversal_cannot_escape_root(self, tmp_path):
        root = tmp_path / "store"
        sentinel = tmp_path / "sekrit.json"
        sentinel.write_text(json.dumps({"leak": True}))
        store = ContentStore(root)
        # Before validation this resolved to <root>/aa/aa/../../../
        # sekrit.json == tmp_path/sekrit.json.
        assert store.get("aa/../../../sekrit") is None


class TestContentStoreGC:
    def test_evicts_lru_until_budget(self, tmp_path):
        store = ContentStore(tmp_path)
        keys = fill(store, 6)
        total = store.total_bytes()
        per_entry = total // 6
        report = store.gc(max_bytes=per_entry * 3)
        # Oldest first, newest kept.
        assert report["removed"] == keys[:3]
        assert report["kept_bytes"] <= per_entry * 3 + 3
        for key in keys[:3]:
            assert store.get(key) is None
        for key in keys[3:]:
            assert store.get(key) is not None

    def test_dry_run_removes_nothing(self, tmp_path):
        store = ContentStore(tmp_path)
        keys = fill(store, 4)
        report = store.gc(max_bytes=0, dry_run=True)
        assert report["dry_run"] is True
        assert report["removed"] == keys
        for key in keys:
            assert store.contains(key)

    def test_budget_larger_than_store_is_noop(self, tmp_path):
        store = ContentStore(tmp_path)
        fill(store, 3)
        report = store.gc(max_bytes=1 << 30)
        assert report["removed"] == []

    def test_sweeps_stale_tmp_files(self, tmp_path):
        store = ContentStore(tmp_path)
        fill(store, 1)
        shard = next(tmp_path.glob("??"))
        stale = shard / "leftover.tmp"
        stale.write_text("partial")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        store.gc(max_bytes=1 << 30)
        assert not stale.exists()


class TestCacheGCCLI:
    def test_dry_run_then_real(self, tmp_path):
        store = ContentStore(tmp_path)
        keys = fill(store, 4)
        out = io.StringIO()
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "0", "--dry-run"], out=out) == 0
        assert "would evict 4 entries" in out.getvalue()
        assert all(store.contains(k) for k in keys)
        out = io.StringIO()
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "0"], out=out) == 0
        assert "evicted 4 entries" in out.getvalue()
        assert not any(store.contains(k) for k in keys)

    def test_honours_cache_dir_env(self, tmp_path, monkeypatch):
        store = ContentStore(tmp_path / "envroot")
        fill(store, 2)
        monkeypatch.setenv("REPRO_SIM_CACHE_DIR",
                           str(tmp_path / "envroot"))
        out = io.StringIO()
        assert main(["cache", "gc", "--max-bytes", "0"], out=out) == 0
        assert "evicted 2 entries" in out.getvalue()

    def test_negative_budget_rejected(self, tmp_path):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "-1"], out=io.StringIO()) == 2


# ---------------------------------------------------------------------------
# Two-process race: concurrent writers + readers + GC share one root.


def _hammer(root: str, worker: int, iterations: int, out):
    """Child process: interleave puts, gets, and GCs on shared keys."""
    try:
        store = RunCache(root)
        for i in range(iterations):
            key = store_key({"slot": i % 5})
            store.put(key, {"worker": worker, "i": i,
                            "pad": "y" * 500})
            store._mem.clear()  # force disk reads
            data = store.get(key)
            # A concurrent GC may have evicted it; what's not allowed
            # is a torn/partial read.
            assert data is None or (isinstance(data, dict)
                                    and "pad" in data), data
            if worker == 0 and i % 7 == 0:
                store.gc(max_bytes=2000)
        out.put((worker, "ok"))
    except BaseException as exc:  # pragma: no cover - failure path
        out.put((worker, f"{type(exc).__name__}: {exc}"))


class TestConcurrentWriters:
    def test_two_process_race(self, tmp_path):
        """Two processes hammering the same root — same-key writes,
        reads, and GC evictions — must never crash or observe a torn
        entry (atomic temp-file + rename, corrupt/missing = miss)."""
        ctx = multiprocessing.get_context("fork")
        out = ctx.Queue()
        procs = [ctx.Process(target=_hammer,
                             args=(str(tmp_path), w, 60, out))
                 for w in range(2)]
        for proc in procs:
            proc.start()
        results = [out.get(timeout=60) for _ in procs]
        for proc in procs:
            proc.join(timeout=60)
        assert all(status == "ok" for _, status in results), results

    def test_truncated_entry_is_miss_not_exception(self, tmp_path):
        store = ContentStore(tmp_path)
        key = store_key({"x": 1})
        store.put(key, {"x": 1})
        # Simulate a torn write from a non-atomic writer.
        path = store._path(key)
        path.write_bytes(path.read_bytes()[:5])
        assert store.get(key) is None

    def test_schema_drifted_row_is_miss_for_runner(self, tmp_path):
        """A cached row whose keys no longer match VariantResult must
        re-simulate, not crash."""
        from repro.bench.cache import run_key
        from repro.bench.runner import run_variant
        from repro.ir import print_module
        from repro.machine import HASWELL
        from repro.workloads import IntegerSort

        def wl():
            return IntegerSort(num_keys=1000, num_buckets=1 << 10)

        cache = RunCache(tmp_path)
        key = run_key(print_module(wl().build_variant("plain")),
                      HASWELL, wl(), True)
        cache.put(key, {"not_a_field": 1})
        cache._mem.clear()
        result = run_variant(wl(), "plain", HASWELL, cache=cache)
        assert result.cycles > 0

    def test_crashed_writer_leaves_no_entry(self, tmp_path):
        """An exception mid-put removes the temp file and stores
        nothing."""
        store = ContentStore(tmp_path)
        key = store_key({"boom": True})
        try:
            store.put(key, {"bad": object()})
        except TypeError:
            pass
        assert store.get(key) is None
        assert list(tmp_path.glob("??/*.tmp")) == []
