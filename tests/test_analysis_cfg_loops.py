"""Tests for CFG analyses (dominators, frontiers) and loop detection."""

import pytest

from repro.analysis import (LoopInfo, dominance_frontiers, dominates,
                            dominators, instruction_dominates,
                            predecessor_map, reverse_postorder)
from repro.ir import INT64, IRBuilder, Module, VOID
from tests.conftest import build_diamond_function, build_indirect_kernel


def build_nested_loops() -> Module:
    """for i in 0..n: for j in 0..m: body — two nested counted loops."""
    m = Module("nest")
    f = m.create_function("f", VOID, [("n", INT64), ("m", INT64)])
    b = IRBuilder()
    entry = f.add_block("entry")
    outer = f.add_block("outer")
    inner = f.add_block("inner")
    outer_latch = f.add_block("outer.latch")
    exit_ = f.add_block("exit")
    b.set_insert_point(entry)
    g = b.cmp("sgt", f.arg("n"), b.const(0), "g")
    b.br(g, outer, exit_)
    b.set_insert_point(outer)
    i = b.phi(INT64, "i")
    g2 = b.cmp("sgt", f.arg("m"), b.const(0), "g2")
    b.br(g2, inner, outer_latch)
    b.set_insert_point(inner)
    j = b.phi(INT64, "j")
    j_next = b.add(j, b.const(1), "j.next")
    jc = b.cmp("slt", j_next, f.arg("m"), "jc")
    b.br(jc, inner, outer_latch)
    j.add_incoming(b.const(0), outer)
    j.add_incoming(j_next, inner)
    b.set_insert_point(outer_latch)
    i_next = b.add(i, b.const(1), "i.next")
    ic = b.cmp("slt", i_next, f.arg("n"), "ic")
    b.br(ic, outer, exit_)
    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, outer_latch)
    b.set_insert_point(exit_)
    b.ret()
    from repro.ir import verify_module
    verify_module(m)
    return m


class TestOrderings:
    def test_rpo_starts_at_entry(self, diamond_module):
        f = diamond_module.function("f")
        rpo = reverse_postorder(f)
        assert rpo[0] is f.entry
        assert rpo[-1].name == "merge"

    def test_rpo_covers_only_reachable(self):
        m = Module("m")
        f = m.create_function("f", VOID)
        b = IRBuilder()
        b.set_insert_point(f.add_block("entry"))
        b.ret()
        dead = f.add_block("dead")
        b.set_insert_point(dead)
        b.ret()
        assert dead not in reverse_postorder(f)

    def test_predecessor_map(self, diamond_module):
        f = diamond_module.function("f")
        preds = predecessor_map(f)
        assert preds[f.block("entry")] == []
        assert len(preds[f.block("merge")]) == 2


class TestDominators:
    def test_entry_has_no_idom(self, diamond_module):
        f = diamond_module.function("f")
        assert dominators(f)[f.entry] is None

    def test_diamond_idoms(self, diamond_module):
        f = diamond_module.function("f")
        idom = dominators(f)
        assert idom[f.block("then")] is f.block("entry")
        assert idom[f.block("other")] is f.block("entry")
        assert idom[f.block("merge")] is f.block("entry")

    def test_loop_idoms(self, indirect_module):
        f = indirect_module.function("kernel")
        idom = dominators(f)
        assert idom[f.block("loop")] is f.block("entry")
        assert idom[f.block("exit")] is f.block("entry")

    def test_dominates_reflexive_and_entry(self, diamond_module):
        f = diamond_module.function("f")
        idom = dominators(f)
        merge = f.block("merge")
        assert dominates(merge, merge, idom)
        assert dominates(f.entry, merge, idom)
        assert not dominates(f.block("then"), merge, idom)

    def test_nested_loop_dominators(self):
        f = build_nested_loops().function("f")
        idom = dominators(f)
        assert idom[f.block("inner")] is f.block("outer")
        assert dominates(f.block("outer"), f.block("outer.latch"), idom)

    def test_instruction_dominates_same_block(self, indirect_module):
        f = indirect_module.function("kernel")
        loop = f.block("loop")
        insts = loop.instructions
        assert instruction_dominates(insts[0], insts[3])
        assert not instruction_dominates(insts[3], insts[0])

    def test_instruction_dominates_cross_block(self, diamond_module):
        f = diamond_module.function("f")
        entry_cmp = f.block("entry").instructions[0]
        merge_phi = f.block("merge").phis[0]
        assert instruction_dominates(entry_cmp, merge_phi)
        then_inst = f.block("then").instructions[0]
        assert not instruction_dominates(merge_phi, then_inst)


class TestDominanceFrontiers:
    def test_diamond_frontier(self, diamond_module):
        f = diamond_module.function("f")
        frontiers = dominance_frontiers(f)
        merge = f.block("merge")
        assert frontiers[f.block("then")] == {merge}
        assert frontiers[f.block("other")] == {merge}
        assert frontiers[merge] == set()

    def test_loop_header_in_own_frontier(self, indirect_module):
        f = indirect_module.function("kernel")
        frontiers = dominance_frontiers(f)
        loop = f.block("loop")
        assert loop in frontiers[loop]


class TestLoopInfo:
    def test_single_loop(self, indirect_module):
        f = indirect_module.function("kernel")
        info = LoopInfo(f)
        assert len(info.loops) == 1
        loop = info.loops[0]
        assert loop.header.name == "loop"
        assert loop.depth == 1
        assert loop.latches == [f.block("loop")]

    def test_preheader_and_exits(self, indirect_module):
        f = indirect_module.function("kernel")
        loop = LoopInfo(f).loops[0]
        assert loop.preheader.name == "entry"
        assert [b.name for b in loop.exit_blocks] == ["exit"]
        assert loop.single_exit_condition is not None

    def test_nested_loops_forest(self):
        f = build_nested_loops().function("f")
        info = LoopInfo(f)
        assert len(info.loops) == 2
        outer = next(l for l in info.loops if l.header.name == "outer")
        inner = next(l for l in info.loops if l.header.name == "inner")
        assert inner.parent is outer
        assert inner.depth == 2
        assert outer.children == [inner]
        assert inner.blocks < outer.blocks

    def test_loop_of_block_is_innermost(self):
        f = build_nested_loops().function("f")
        info = LoopInfo(f)
        assert info.loop_of_block(f.block("inner")).header.name == "inner"
        assert info.loop_of_block(f.block("outer")).header.name == "outer"
        assert info.loop_of_block(f.block("entry")) is None

    def test_loop_of_instruction(self):
        f = build_nested_loops().function("f")
        info = LoopInfo(f)
        j_phi = f.block("inner").phis[0]
        assert info.loop_of(j_phi).header.name == "inner"
        assert info.in_any_loop(j_phi)

    def test_no_loops_in_diamond(self, diamond_module):
        info = LoopInfo(diamond_module.function("f"))
        assert info.loops == []

    def test_multi_block_loop_body(self):
        # Loop whose body spans two blocks (condition in one, latch in
        # another).
        m = Module("m")
        f = m.create_function("f", VOID, [("n", INT64)])
        b = IRBuilder()
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b.set_insert_point(entry)
        b.jmp(header)
        b.set_insert_point(header)
        i = b.phi(INT64, "i")
        c = b.cmp("slt", i, f.arg("n"), "c")
        b.br(c, body, exit_)
        b.set_insert_point(body)
        i_next = b.add(i, b.const(1), "i.next")
        b.jmp(header)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i_next, body)
        b.set_insert_point(exit_)
        b.ret()
        info = LoopInfo(f)
        assert len(info.loops) == 1
        loop = info.loops[0]
        assert {blk.name for blk in loop.blocks} == {"header", "body"}
        assert loop.exiting_blocks == [header]
