"""Tests for the ``python -m repro`` command-line driver."""

import io

import pytest

from repro.cli import main
from repro.ir import parse_module, verify_module

SOURCE = """
void histogram(long* restrict keys, long* restrict buckets, long n) {
    for (long i = 0; i < n; i++)
        buckets[keys[i]] += 1;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(SOURCE)
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCompileCommand:
    def test_plain_compile_prints_ir(self, source_file):
        code, out = run_cli("compile", source_file)
        assert code == 0
        assert "func @histogram" in out
        assert "prefetch" not in out

    def test_prefetch_flag_inserts_prefetches(self, source_file):
        code, out = run_cli("compile", source_file, "--prefetch")
        assert code == 0
        assert "prefetched %cur" in out
        assert out.count("prefetch i64*") == 2

    def test_lookahead_flag(self, source_file):
        code, out = run_cli("compile", source_file, "--prefetch",
                            "--lookahead", "128")
        assert code == 0
        assert "%i, 128" in out
        assert "%i, 64" in out  # 128/2 for the indirect prefetch

    def test_no_stride_flag(self, source_file):
        code, out = run_cli("compile", source_file, "--prefetch",
                            "--no-stride")
        assert out.count("prefetch i64*") == 1

    def test_emitted_ir_reparses(self, source_file, tmp_path):
        target = tmp_path / "out.ir"
        code, out = run_cli("compile", source_file, "--prefetch", "-O",
                            "--emit-ir", str(target))
        assert code == 0
        module = parse_module(target.read_text())
        verify_module(module)

    def test_optimize_pipeline_runs(self, source_file):
        code, out = run_cli("compile", source_file, "--prefetch", "-O")
        assert code == 0
        # LICM hoisted the clamp bound out of the loop body.
        ir = out[out.index("func @"):]
        entry_block = ir.split("for.cond:")[0]
        assert "pf.bound" in entry_block

    def test_missing_file_error(self, tmp_path):
        code, _ = run_cli("compile", str(tmp_path / "nope.c"))
        assert code == 1

    def test_syntax_error_reported(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text("void f( {")
        code, _ = run_cli("compile", str(bad))
        assert code == 1


class TestSystemsCommand:
    def test_lists_all_machines(self):
        code, out = run_cli("systems")
        assert code == 0
        for name in ("Haswell", "A57", "A53", "Xeon Phi"):
            assert name in out


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()


class TestBenchErrors:
    def test_unknown_figure_exits_2_with_message(self, capsys):
        code, out = run_cli("bench", "fig99")
        assert code == 2
        assert out == ""
        err = capsys.readouterr().err
        assert "unknown bench target 'fig99'" in err
        assert "fig4a" in err  # lists the available figures


class TestUniformUnknownTargets:
    """bench/stats/explain/timeline share one unknown-target message
    shape (``error: unknown <cmd> target '<t>'; expected ...``) and
    exit code 2."""

    @pytest.mark.parametrize("command",
                             ("stats", "explain", "timeline"))
    def test_workload_commands_share_stats_message(self, command,
                                                   capsys):
        code, out = run_cli(command, "nonesuch")
        assert code == 2
        assert out == ""
        err = capsys.readouterr().err
        assert f"unknown {command} target 'nonesuch'" in err
        assert ("expected a workload name (is, cg, ra, hj2, hj8, "
                "g500-s16, g500-s21), 'quick', or fig4a-fig4d") in err

    def test_bench_message_has_the_same_shape(self, capsys):
        code, _ = run_cli("bench", "nonesuch")
        assert code == 2
        err = capsys.readouterr().err
        assert "error: unknown bench target 'nonesuch'; expected " \
            in err

    @pytest.mark.parametrize("command", ("explain", "timeline"))
    def test_unknown_machine_exits_2(self, command, capsys):
        code, _ = run_cli(command, "is", "--machine", "Pentium")
        assert code == 2
        assert "unknown machine" in capsys.readouterr().err


class TestBenchHotReport:
    def test_hot_report_prints_traces_and_remarks(self):
        code, out = run_cli("bench", "fig2", "--small", "--hot-report",
                            "--hot-top", "5")
        assert code == 0
        assert "Fig. 2: prefetch schemes" in out
        assert "Hottest traces" in out
        # The trace table carries per-trace provenance columns…
        for column in ("workload", "function", "iterations",
                       "% sim"):
            assert column in out
        # …and the remark stream section follows.
        assert "Trace-JIT remarks (repro-remarks-v1):" in out
        assert "TraceCompiled" in out

    def test_hot_report_restores_environment(self, monkeypatch):
        import os
        monkeypatch.delenv("REPRO_SIM_TRACEJIT", raising=False)
        monkeypatch.setenv("REPRO_SIM_CACHE", "0")
        code, _ = run_cli("bench", "fig2", "--small", "--hot-report")
        assert code == 0
        assert "REPRO_SIM_TRACEJIT" not in os.environ
        assert os.environ["REPRO_SIM_CACHE"] == "0"


class TestRingClampViaCli:
    """An invalid REPRO_SIM_TELEMETRY_RING must warn and fall back —
    never abort — when reached through the CLI's telemetry runs."""

    def test_bogus_ring_warns_and_still_reports(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY_RING", "bogus")
        with pytest.warns(RuntimeWarning,
                          match="REPRO_SIM_TELEMETRY_RING='bogus' is "
                                "not an integer"):
            code, out = run_cli("stats", "is", "--small", "--jobs",
                                "1")
        assert code == 0
        assert "IS" in out

    def test_oversized_ring_clamps_not_crashes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY_RING", str(1 << 30))
        with pytest.warns(RuntimeWarning, match="above the maximum"):
            code, _ = run_cli("stats", "is", "--small", "--jobs", "1")
        assert code == 0


class TestStatsCommand:
    def test_unknown_target_exits_2(self, capsys):
        code, _ = run_cli("stats", "nonesuch")
        assert code == 2
        assert "unknown stats target" in capsys.readouterr().err

    def test_unknown_machine_exits_2(self, capsys):
        code, _ = run_cli("stats", "is", "--machine", "Pentium")
        assert code == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_single_workload_table(self):
        code, out = run_cli("stats", "hj2", "--small", "--jobs", "1",
                            "--machine", "A53")
        assert code == 0
        assert "HJ-2" in out and "A53" in out
        for column in ("Timely", "Late", "Early", "Redundant",
                       "Dropped", "Unused", "Accuracy", "Stall"):
            assert column in out

    def test_json_output_parses(self):
        import json
        code, out = run_cli("stats", "ra", "--small", "--jobs", "1",
                            "--json")
        assert code == 0
        report = json.loads(out)
        assert report["schema"] == "repro-telemetry-report-v1"
        (row,) = report["rows"]
        assert row["workload"] == "RA"
        assert row["machine"] == "Haswell"
        assert set(row["outcomes"]) == {"timely", "late", "early",
                                        "redundant", "dropped",
                                        "unused"}
        assert row["issued"] == sum(row["outcomes"].values())
