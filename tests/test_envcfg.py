"""Tests for validated integer environment knobs (repro.envcfg):
``REPRO_SIM_JOBS`` and ``REPRO_SIM_MC_WORKERS`` must warn and fall
back on bad values — with an ``EnvVarClamped`` remark when remarks are
being collected — never crash."""

from __future__ import annotations

import warnings

import pytest

from repro.bench.runner import MAX_JOBS, resolve_jobs
from repro.envcfg import env_int
from repro.machine.multicore import MAX_MC_WORKERS, mc_workers
from repro.remarks import RemarkEmitter, collecting


class TestEnvInt:
    def test_unset_and_empty_are_silent(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_KNOB", 7) == 7
            monkeypatch.setenv("REPRO_TEST_KNOB", "")
            assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_valid_value_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "12")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_KNOB", 7, minimum=0,
                           maximum=100) == 12

    def test_non_integer_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "lots")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_below_minimum_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "-4")
        with pytest.warns(RuntimeWarning, match="below the minimum"):
            assert env_int("REPRO_TEST_KNOB", 7, minimum=0) == 0

    def test_above_maximum_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "999999")
        with pytest.warns(RuntimeWarning, match="above the maximum"):
            assert env_int("REPRO_TEST_KNOB", 7, maximum=64) == 64

    def test_emits_env_var_clamped_remark(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "nope")
        emitter = RemarkEmitter()
        with collecting(emitter), pytest.warns(RuntimeWarning):
            env_int("REPRO_TEST_KNOB", 3)
        remark = next(r for r in emitter if r.name == "EnvVarClamped")
        args = dict(remark.args)
        assert args["var"] == "REPRO_TEST_KNOB"
        assert args["value"] == "nope"
        assert args["used"] == 3


class TestResolveJobs:
    def test_explicit_wins_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOBS", "garbage")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs(3) == 3

    def test_garbage_env_falls_back_to_autodetect(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_SIM_JOBS"):
            assert resolve_jobs() >= 1

    def test_negative_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOBS", "-2")
        with pytest.warns(RuntimeWarning):
            assert resolve_jobs() >= 1

    def test_oversized_env_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOBS", str(MAX_JOBS * 10))
        with pytest.warns(RuntimeWarning, match="above the maximum"):
            assert resolve_jobs() == MAX_JOBS

    def test_valid_env_still_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOBS", "2")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs() == 2


class TestMcWorkers:
    def test_garbage_env_means_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MC_WORKERS", "fast")
        with pytest.warns(RuntimeWarning,
                          match="REPRO_SIM_MC_WORKERS"):
            assert mc_workers() == 0

    def test_negative_env_clamps_to_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MC_WORKERS", "-8")
        with pytest.warns(RuntimeWarning):
            assert mc_workers() == 0

    def test_oversized_env_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MC_WORKERS",
                           str(MAX_MC_WORKERS + 1))
        with pytest.warns(RuntimeWarning):
            assert mc_workers() == MAX_MC_WORKERS

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MC_WORKERS", "junk")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert mc_workers(2) == 2

    def test_valid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MC_WORKERS", "4")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert mc_workers() == 4
