"""Tests for the C-like frontend: lexer, parser, lowering, execution."""

import pytest

from repro.frontend import (LexError, LoweringError, SyntaxErrorC,
                            compile_source, parse_source, tokenize)
from repro.ir import verify_module
from repro.machine import Interpreter, Memory


class TestLexer:
    def test_keywords_and_idents(self):
        toks = tokenize("long foo")
        assert [(t.kind, t.text) for t in toks[:-1]] == \
            [("keyword", "long"), ("ident", "foo")]

    def test_numbers(self):
        toks = tokenize("42 0x1F 3.5")
        assert [(t.kind, t.text) for t in toks[:-1]] == \
            [("number", "42"), ("number", "0x1F"), ("float", "3.5")]

    def test_operators_maximal_munch(self):
        toks = tokenize("a <<= b << c <= d")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ops == ["<<=", "<<", "<="]

    def test_comments_skipped(self):
        toks = tokenize("a // line\n /* block\n */ b")
        idents = [t.text for t in toks if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestParser:
    def test_function_structure(self):
        prog = parse_source("""
        long add(long a, long b) { return a + b; }
        """)
        (f,) = prog.functions
        assert f.name == "add"
        assert [p.name for p in f.params] == ["a", "b"]

    def test_precedence(self):
        from repro.frontend import ast
        prog = parse_source("long f() { return 1 + 2 * 3; }")
        ret = prog.functions[0].body[0]
        assert isinstance(ret.value, ast.Binary)
        assert ret.value.op == "+"
        assert ret.value.rhs.op == "*"

    def test_restrict_param(self):
        prog = parse_source("void f(long* restrict p, long* q) {}")
        assert prog.functions[0].params[0].restrict
        assert not prog.functions[0].params[1].restrict

    def test_pure_function(self):
        prog = parse_source("pure long f(long x) { return x; }")
        assert prog.functions[0].pure

    def test_for_with_empty_clauses(self):
        prog = parse_source("void f() { for (;;) { } }")
        loop = prog.functions[0].body[0]
        assert loop.init is None and loop.cond is None and \
            loop.step is None

    def test_missing_semicolon(self):
        with pytest.raises(SyntaxErrorC):
            parse_source("void f() { long x = 1 }")

    def test_dangling_else_binds_inner(self):
        prog = parse_source("""
        long f(long x) {
            if (x > 0) if (x > 10) return 2; else return 1;
            return 0;
        }
        """)
        outer = prog.functions[0].body[0]
        assert outer.otherwise == []  # else bound to the inner if

    def test_increment_statement(self):
        prog = parse_source("void f(long* a) { a[0]++; }")
        stmt = prog.functions[0].body[0]
        from repro.frontend import ast
        assert isinstance(stmt, ast.Assign) and stmt.op == "+="


class TestLoweringAndExecution:
    def run(self, source, func, args, setup=None):
        module = compile_source(source)
        verify_module(module)
        mem = Memory()
        handles = setup(mem) if setup else {}
        resolved = [handles.get(a, a) if isinstance(a, str) else a
                    for a in args]
        return Interpreter(module, mem).run(func, resolved), handles

    def test_fibonacci(self):
        src = """
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        """
        result, _ = self.run(src, "fib", [10])
        assert result.value == 55

    def test_while_loop(self):
        src = """
        long collatz(long n) {
            long steps = 0;
            while (n != 1) {
                if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
                steps++;
            }
            return steps;
        }
        """
        assert self.run(src, "collatz", [6])[0].value == 8

    def test_array_sum(self):
        src = """
        long sum(long* a, long n) {
            long acc = 0;
            for (long i = 0; i < n; i++) acc += a[i];
            return acc;
        }
        """

        def setup(mem):
            arr = mem.allocate(8, 5, "a")
            arr.fill([1, 2, 3, 4, 5])
            return {"a": arr.base}

        result, _ = self.run(src, "sum", ["a", 5], setup)
        assert result.value == 15

    def test_double_arithmetic(self):
        src = """
        double mean(double* x, long n) {
            double s = 0.0;
            for (long i = 0; i < n; i++) s = s + x[i];
            return s / 2.0;
        }
        """

        def setup(mem):
            arr = mem.allocate(8, 2, "x", is_float=True)
            arr.fill([1.5, 2.5])
            return {"x": arr.base}

        result, _ = self.run(src, "mean", ["x", 2], setup)
        assert result.value == 2.0

    def test_ternary_and_logical(self):
        src = """
        long clamp01(long x) {
            return x < 0 ? 0 : (x > 1 ? 1 : x);
        }
        long both(long a, long b) { return (a > 0) && (b > 0); }
        """
        assert self.run(src, "clamp01", [-5])[0].value == 0
        assert self.run(src, "clamp01", [99])[0].value == 1
        assert self.run(src, "both", [1, 1])[0].value == 1
        assert self.run(src, "both", [1, 0])[0].value == 0

    def test_shadowing_scopes(self):
        src = """
        long f() {
            long x = 1;
            { long y = 10; x = x + y; }
            return x;
        }
        """
        assert self.run(src, "f", [])[0].value == 11

    def test_prefetch_statement_lowered(self):
        src = """
        void touch(long* restrict a, long n) {
            for (long i = 0; i < n; i++) {
                prefetch(a[i + 8]);
                a[i] = i;
            }
        }
        """
        module = compile_source(src)
        from repro.ir import Prefetch
        f = module.function("touch")
        assert any(isinstance(i, Prefetch) for i in f.instructions())

    def test_nested_loops_matrix(self):
        src = """
        void fill(long* m, long rows, long cols) {
            for (long r = 0; r < rows; r++)
                for (long c = 0; c < cols; c++)
                    m[r * cols + c] = r * 100 + c;
        }
        """

        def setup(mem):
            arr = mem.allocate(8, 12, "m")
            return {"m": arr.base}

        _, handles = self.run(src, "fill", ["m", 3, 4], setup)

    def test_unknown_variable(self):
        with pytest.raises(LoweringError):
            compile_source("long f() { return nope; }")

    def test_type_mismatch(self):
        with pytest.raises(LoweringError):
            compile_source("long f(double x) { long y = x; return y; }")

    def test_unknown_function(self):
        with pytest.raises(LoweringError):
            compile_source("long f() { return g(); }")

    def test_indexing_non_pointer(self):
        with pytest.raises(LoweringError):
            compile_source("long f(long x) { return x[0]; }")

    def test_redeclaration_same_scope(self):
        with pytest.raises(LoweringError):
            compile_source("long f() { long x = 1; long x = 2; return x; }")


class TestFrontendToPrefetchPipeline:
    def test_full_pipeline(self):
        """Source -> IR -> prefetch pass -> timed simulation."""
        from repro.machine import HASWELL
        from repro.passes import IndirectPrefetchPass
        import numpy as np

        src = """
        void histogram(long* restrict keys, long* restrict out, long n) {
            for (long i = 0; i < n; i++)
                out[keys[i]] += 1;
        }
        """
        rng = np.random.default_rng(0)
        values = rng.integers(0, 4096, 400)

        def run(transform):
            module = compile_source(src)
            if transform:
                report = IndirectPrefetchPass().run(module)
                assert report.num_prefetches == 2
            mem = Memory()
            keys = mem.allocate(8, 400, "keys")
            keys.fill(values)
            out = mem.allocate(8, 4096, "out")
            interp = Interpreter(module, mem, machine=HASWELL)
            interp.run("histogram", [keys.base, out.base, 400])
            return list(out.data)

        assert run(False) == run(True)
