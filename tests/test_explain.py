"""Tests for the compile-time ⋈ runtime join behind ``repro explain``:
remark collection leaves the module byte-identical, stable prefetch IDs
land on runtime PCs with observed outcome bins, and the CLI surfaces
the join as a table / JSON / archived remark streams."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.machine import HASWELL
from repro.remarks import parse_stream
from repro.remarks.join import (INSERTION_REMARKS, collect_remarks,
                                explain_rows, render_explain,
                                report_dict)
from repro.telemetry.outcomes import OUTCOMES
from repro.workloads import IntegerSort


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def tiny_is() -> IntegerSort:
    return IntegerSort(num_keys=2000, num_buckets=1 << 16)


class TestCollectRemarks:
    def test_module_identical_to_uncollected_build(self):
        observed, emitter = collect_remarks(tiny_is(), "auto")
        plain = tiny_is().build_variant("auto", lookahead=64)
        from repro.ir import print_module
        assert print_module(observed) == print_module(plain)
        assert len(emitter) > 0

    def test_insertion_remarks_carry_ids(self):
        _, emitter = collect_remarks(tiny_is(), "auto")
        inserted = [r for r in emitter if r.name in INSERTION_REMARKS]
        assert inserted
        assert all(r.prefetch_id for r in inserted)
        assert len({r.prefetch_id for r in inserted}) == len(inserted)


class TestExplainRows:
    @pytest.fixture(scope="class")
    def row(self):
        (row,) = explain_rows([tiny_is()], machines=(HASWELL,),
                              jobs=1, cache=False)
        return row

    def test_row_shape(self, row):
        assert row["workload"] == "IS"
        assert row["machine"] == "Haswell"
        assert row["variant"] == "auto"
        assert row["speedup"] > 0
        assert row["issued"] > 0
        assert row["num_remarks"] > 0

    def test_every_prefetch_joined_with_runtime_bins(self, row):
        # The acceptance bar: each inserted prefetch maps to a PC that
        # the telemetry run actually observed.
        assert row["prefetches"]
        for pf in row["prefetches"]:
            assert pf["pc"] is not None
            assert pf["observed"], pf
            assert set(pf["outcomes"]) == set(OUTCOMES)
            assert sum(pf["outcomes"].values()) > 0
            assert pf["remark"]["prefetch_id"] == pf["prefetch_id"]

    def test_per_pc_bins_account_for_all_issues(self, row):
        joined = sum(sum(pf["outcomes"].values())
                     for pf in row["prefetches"])
        assert joined == row["issued"]

    def test_remarks_stream_round_trips(self, row):
        remarks = parse_stream(row["remarks_stream"])
        assert len(remarks) == row["num_remarks"]

    def test_render_and_report(self, row):
        text = render_explain([row])
        assert "IS on Haswell" in text
        for column in ("Prefetch", "PC", "Offset", "Timely", "Dropped"):
            assert column in text
        for pf in row["prefetches"]:
            assert pf["prefetch_id"] in text
        report = report_dict([row])
        assert report["schema"] == "repro-explain-v1"
        json.dumps(report)  # JSON-serialisable as-is


class TestExplainCLI:
    def test_unknown_target_exits_2(self, capsys):
        code, _ = run_cli("explain", "nonesuch")
        assert code == 2
        assert "unknown explain target" in capsys.readouterr().err

    def test_unknown_machine_exits_2(self, capsys):
        code, _ = run_cli("explain", "is", "--machine", "Pentium")
        assert code == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_json_and_remarks_artifact(self, tmp_path):
        artifact = tmp_path / "remarks.json"
        code, out = run_cli("explain", "ra", "--small", "--jobs", "1",
                            "--json", "--remarks-out", str(artifact))
        assert code == 0
        report = json.loads(out)
        assert report["schema"] == "repro-explain-v1"
        (row,) = report["rows"]
        assert row["workload"] == "RA"
        assert row["prefetches"]
        assert all(pf["observed"] for pf in row["prefetches"])

        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro-explain-remarks-v1"
        assert payload["machine"] == "Haswell"
        stream = payload["workloads"]["RA"]
        assert stream == row["remarks_stream"]
        assert parse_stream(stream)
